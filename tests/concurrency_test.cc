// Concurrency suite: the thread pool itself, the determinism contract of
// the parallel build (serial and 8-thread builds must produce the same
// bytes), and reader-parallel query traffic over a shared buffer pool.
// Run under the `tsan` preset this is the data-race detector's workload;
// under the plain presets it is a functional regression test.

#include <atomic>
#include <barrier>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

// ---------------------------------------------------------------------------
// ThreadPool unit tests

TEST(ThreadPoolTest, DefaultThreadsIsPositive) {
  EXPECT_GE(ThreadPool::DefaultThreads(), 1u);
}

TEST(ThreadPoolTest, DrainsEverySubmittedTaskBeforeJoining) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(4);
    EXPECT_EQ(pool.num_threads(), 4u);
    for (int i = 0; i < 500; ++i) {
      pool.Submit(
          [&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
    // The destructor drains all queued work before joining the workers.
  }
  EXPECT_EQ(counter.load(), 500);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(0, kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  pool.ParallelFor(5, 5, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(7, 9, [&](size_t i) {
    EXPECT_TRUE(i == 7 || i == 8);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPoolTest, ParallelForFromConcurrentExternalThreads) {
  // The documented contract: ParallelFor may be called from any number of
  // external (non-pool) threads at once. Each caller must see exactly its
  // own range completed before ParallelFor returns.
  ThreadPool pool(4);
  constexpr size_t kCallers = 6;
  constexpr size_t kN = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kCallers);
  for (auto& v : hits) {
    std::vector<std::atomic<int>> fresh(kN);
    for (auto& h : fresh) h.store(0);
    v.swap(fresh);
  }
  std::vector<std::thread> callers;
  for (size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.ParallelFor(0, kN, [&, c](size_t i) {
        hits[c][i].fetch_add(1, std::memory_order_relaxed);
      });
      for (size_t i = 0; i < kN; ++i) {
        ASSERT_EQ(hits[c][i].load(), 1) << "caller " << c << " index " << i;
      }
    });
  }
  for (auto& t : callers) t.join();
}

// ---------------------------------------------------------------------------
// Build determinism: the tentpole contract. A parallel build fans the
// per-point LP solves across workers but commits results in point order,
// so the persisted image must be byte-identical to a serial build.

std::string BuildAndSerialize(const PointSet& pts, size_t num_threads,
                              bool use_xtree, size_t max_partitions) {
  PageFile file(2048);
  BufferPool pool(&file, 512);
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  options.use_xtree = use_xtree;
  options.decomposition.max_partitions = max_partitions;
  options.parallel.num_threads = num_threads;
  NNCellIndex index(&pool, pts.dim(), options);
  Status built = index.BulkBuild(pts);
  EXPECT_TRUE(built.ok()) << built.ToString();
  std::ostringstream out;
  Status saved = index.Save(out);
  EXPECT_TRUE(saved.ok()) << saved.ToString();
  return out.str();
}

TEST(BuildDeterminismTest, ParallelBuildIsByteIdenticalToSerial) {
  PointSet pts = GenerateUniform(300, 8, 42);
  const std::string serial = BuildAndSerialize(pts, 1, true, 1);
  for (size_t threads : {2u, 8u}) {
    const std::string parallel = BuildAndSerialize(pts, threads, true, 1);
    EXPECT_EQ(serial, parallel) << threads << "-thread build diverged";
  }
}

TEST(BuildDeterminismTest, HoldsForRStarAndDecomposedVariants) {
  PointSet pts = GenerateUniform(200, 6, 77);
  // R*-tree backend (no supernodes) and Section-3 decomposition both go
  // through the same phase-2 fan-out; neither may perturb the image.
  EXPECT_EQ(BuildAndSerialize(pts, 1, false, 1),
            BuildAndSerialize(pts, 8, false, 1));
  EXPECT_EQ(BuildAndSerialize(pts, 1, true, 4),
            BuildAndSerialize(pts, 8, true, 4));
}

TEST(BuildDeterminismTest, LpHotPathOptimizationsAreThreadCountInvariant) {
  // The optimized LP pipeline (bisector pre-pruning + ray-shoot warm
  // starts) keeps all of its state per cell, so it must not perturb the
  // byte-identity contract; the cold configuration is pinned alongside it
  // so a regression is attributable to one pipeline. kCorrect at d = 16
  // maximizes both the skipped-face rate and the constraint-row count.
  PointSet pts = GenerateUniform(160, 16, 29);
  for (bool optimized : {true, false}) {
    NNCellOptions options;
    options.algorithm = ApproxAlgorithm::kCorrect;
    options.approx.prune_bisectors = optimized;
    options.approx.warm_start = optimized;
    std::string serial;
    for (size_t threads : {1u, 2u, 8u}) {
      PageFile f(2048);
      BufferPool p(&f, 512);
      options.parallel.num_threads = threads;
      NNCellIndex index(&p, pts.dim(), options);
      Status built = index.BulkBuild(pts);
      ASSERT_TRUE(built.ok()) << built.ToString();
      std::ostringstream out;
      Status saved = index.Save(out);
      ASSERT_TRUE(saved.ok()) << saved.ToString();
      if (threads == 1) {
        serial = out.str();
      } else {
        EXPECT_EQ(serial, out.str())
            << threads << "-thread " << (optimized ? "optimized" : "cold")
            << " build diverged";
      }
    }
  }
}

TEST(BuildDeterminismTest, HoldsInSupernodeDimensionality) {
  // d = 16 drives the X-tree into supernode territory (high-dimensional
  // MBR overlap), covering multi-page nodes in the parallel build.
  PointSet pts = GenerateUniform(220, 16, 3);
  EXPECT_EQ(BuildAndSerialize(pts, 1, true, 1),
            BuildAndSerialize(pts, 8, true, 1));
}

// ---------------------------------------------------------------------------
// Reader-parallel query traffic

struct SharedIndex {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
};

SharedIndex MakeSharedIndex(size_t n, size_t dim, size_t pool_capacity) {
  SharedIndex s;
  s.file = std::make_unique<PageFile>(2048);
  // A deliberately small pool forces eviction pressure: concurrent readers
  // continually fault pages in and out of the shared shards.
  s.pool = std::make_unique<BufferPool>(s.file.get(), pool_capacity);
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  s.index = std::make_unique<NNCellIndex>(s.pool.get(), dim, options);
  PointSet pts = GenerateUniform(n, dim, 11);
  Status built = s.index->BulkBuild(pts);
  EXPECT_TRUE(built.ok()) << built.ToString();
  return s;
}

TEST(ConcurrencyTest, ConcurrentReadersAgreeWithSerialAnswers) {
  SharedIndex s = MakeSharedIndex(400, 8, 96);
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 5;
  constexpr size_t kQueriesPerRound = 10;

  PointSet queries =
      GenerateQueries(kThreads * kRounds * kQueriesPerRound, 8, 21);
  // Serial ground truth, computed up front.
  std::vector<uint64_t> want_id(queries.size());
  std::vector<double> want_dist(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = s.index->Query(queries[i]);
    ASSERT_TRUE(r.ok());
    want_id[i] = r->id;
    want_dist[i] = r->dist;
  }

  // All threads sit between rounds when the barrier completion step runs,
  // so no page guard is live: the strict no-pin-leak audit must pass at
  // every round boundary, not just at the end.
  std::atomic<int> audit_failures{0};
  std::barrier round_barrier(
      static_cast<std::ptrdiff_t>(kThreads), [&]() noexcept {
        if (!s.pool->AuditPins().ok()) audit_failures.fetch_add(1);
      });

  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < kThreads; ++t) {
    readers.emplace_back([&, t] {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t k = 0; k < kQueriesPerRound; ++k) {
          size_t i = (round * kThreads + t) * kQueriesPerRound + k;
          auto r = s.index->Query(queries[i]);
          if (!r.ok() || r->id != want_id[i] || r->dist != want_dist[i]) {
            mismatches.fetch_add(1);
          }
        }
        round_barrier.arrive_and_wait();
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(audit_failures.load(), 0);
  Status audit = s.pool->AuditPins();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ConcurrencyTest, ConcurrentKnnAndRangeReaders) {
  // Mixed read traffic: NN point queries, k-NN (branch-and-bound) and
  // range search all traverse the tree concurrently through VisitNode.
  SharedIndex s = MakeSharedIndex(300, 6, 64);
  PointSet queries = GenerateQueries(24, 6, 33);
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 6; ++t) {
    readers.emplace_back([&, t] {
      for (size_t i = 0; i < queries.size(); ++i) {
        const double* q = queries[i];
        switch ((t + i) % 3) {
          case 0: {
            if (!s.index->Query(q).ok()) failures.fetch_add(1);
            break;
          }
          case 1: {
            auto r = s.index->KnnQuery(q, 5);
            if (!r.ok() || r->size() != 5) failures.fetch_add(1);
            break;
          }
          default: {
            if (!s.index->RangeSearch(q, 0.3).ok()) failures.fetch_add(1);
            break;
          }
        }
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
  Status audit = s.pool->AuditPins();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ConcurrencyTest, QueryBatchMatchesSerialUnderSharedPool) {
  SharedIndex s = MakeSharedIndex(350, 8, 96);
  s.index->SetNumThreads(8);
  PointSet queries = GenerateQueries(120, 8, 55);
  auto batch = s.index->QueryBatch(queries);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), queries.size());
  s.index->SetNumThreads(1);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto serial = s.index->Query(queries[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i].id, serial->id);
    EXPECT_EQ((*batch)[i].dist, serial->dist);
  }
  Status audit = s.pool->AuditPins();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ConcurrencyTest, ConcurrentQueryBatchCallers) {
  // QueryBatch itself is documented as callable from several threads at
  // once: external callers share one ThreadPool's ParallelFor.
  SharedIndex s = MakeSharedIndex(300, 8, 96);
  s.index->SetNumThreads(4);
  PointSet queries = GenerateQueries(60, 8, 91);
  auto want = s.index->QueryBatch(queries);
  ASSERT_TRUE(want.ok());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> callers;
  for (size_t c = 0; c < 4; ++c) {
    callers.emplace_back([&] {
      auto got = s.index->QueryBatch(queries);
      if (!got.ok() || got->size() != want->size()) {
        mismatches.fetch_add(1);
        return;
      }
      for (size_t i = 0; i < got->size(); ++i) {
        if ((*got)[i].id != (*want)[i].id ||
            (*got)[i].dist != (*want)[i].dist) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : callers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  Status audit = s.pool->AuditPins();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ConcurrencyTest, SupernodeReadersInHighDimensions) {
  // d = 16 exercises supernode assembly (multi-page nodes through the
  // thread-local scratch buffer) under concurrent eviction pressure.
  SharedIndex s = MakeSharedIndex(220, 16, 64);
  PointSet queries = GenerateQueries(16, 16, 13);
  std::vector<uint64_t> want(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto r = s.index->Query(queries[i]);
    ASSERT_TRUE(r.ok());
    want[i] = r->id;
  }
  std::atomic<int> mismatches{0};
  std::vector<std::thread> readers;
  for (size_t t = 0; t < 8; ++t) {
    readers.emplace_back([&] {
      for (size_t i = 0; i < queries.size(); ++i) {
        auto r = s.index->Query(queries[i]);
        if (!r.ok() || r->id != want[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : readers) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  Status audit = s.pool->AuditPins();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ConcurrencyTest, ShardedPoolKeepsCapacityBudget) {
  PageFile file(2048);
  BufferPool pool(&file, 256);
  EXPECT_GE(pool.num_shards(), 2u);  // capacity 256 shards the pool
  // Small pools must stay single-shard so the classic LRU semantics the
  // storage tests assert are preserved exactly.
  BufferPool tiny(&file, 8);
  EXPECT_EQ(tiny.num_shards(), 1u);
}

}  // namespace
}  // namespace nncell
