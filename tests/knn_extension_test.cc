// Tests for the k-NN extension of the NN-cell index (the paper's stated
// future work) and for the STR bulk loader it leans on.

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "rstar/bulk_load.h"
#include "rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

// ---------- STR bulk load ----------

TEST(StrPartitionTest, EmptyAndSmall) {
  EXPECT_TRUE(StrPartition({}, 10, 3).empty());
  std::vector<Entry> entries(4);
  for (size_t i = 0; i < 4; ++i) {
    entries[i].rect = HyperRect({0.1 * i, 0.0}, {0.1 * i + 0.05, 1.0});
    entries[i].id = i;
  }
  auto groups = StrPartition(entries, 10, 2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 4u);
}

TEST(StrPartitionTest, BalancedGroupSizes) {
  Rng rng(1);
  for (size_t n : {23u, 100u, 257u, 1000u}) {
    std::vector<Entry> entries(n);
    for (size_t i = 0; i < n; ++i) {
      double x = rng.NextDouble(), y = rng.NextDouble();
      entries[i].rect = HyperRect({x, y}, {x, y});
      entries[i].id = i;
    }
    const size_t capacity = 16;
    auto groups = StrPartition(entries, capacity, 2);
    size_t total = 0;
    for (const auto& g : groups) {
      EXPECT_LE(g.size(), capacity);
      if (groups.size() > 1) {
        EXPECT_GE(g.size(), capacity / 2 - 1);
      }
      total += g.size();
    }
    EXPECT_EQ(total, n);
  }
}

TEST(StrPartitionTest, PreservesAllIds) {
  Rng rng(2);
  std::vector<Entry> entries(300);
  for (size_t i = 0; i < 300; ++i) {
    double x = rng.NextDouble(), y = rng.NextDouble(), z = rng.NextDouble();
    entries[i].rect = HyperRect({x, y, z}, {x, y, z});
    entries[i].id = i;
  }
  auto groups = StrPartition(entries, 20, 3);
  std::set<uint64_t> seen;
  for (const auto& g : groups) {
    for (const auto& e : g) seen.insert(e.id);
  }
  EXPECT_EQ(seen.size(), 300u);
}

TEST(StrPartitionTest, TilesAreSpatiallyCoherent) {
  // Points on a grid: each group's MBR should be far smaller than the
  // space (locality), roughly groups ~ tiles.
  std::vector<Entry> entries;
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 32; ++j) {
      Entry e;
      e.rect = HyperRect({i / 32.0, j / 32.0}, {i / 32.0, j / 32.0});
      e.id = i * 32 + j;
      entries.push_back(e);
    }
  }
  auto groups = StrPartition(entries, 64, 2);
  for (const auto& g : groups) {
    HyperRect mbr = HyperRect::Empty(2);
    for (const auto& e : g) mbr.ExpandToRect(e.rect);
    EXPECT_LT(mbr.Volume(), 0.25);  // far below the unit square
  }
}

TEST(BulkLoadTest, QueriesMatchInsertBuiltTree) {
  Rng rng(3);
  const size_t dim = 4;
  const size_t n = 3000;
  PointSet pts(dim);
  std::vector<Entry> entries;
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
    Entry e;
    e.rect = HyperRect::FromPoint(p);
    e.id = i;
    entries.push_back(e);
  }

  PageFile bf(1024), inf(1024);
  BufferPool bpool(&bf, 8192), ipool(&inf, 8192);
  TreeOptions opts;
  opts.dim = dim;
  RStarTree bulk(&bpool, opts);
  bulk.BulkLoad(entries);
  RStarTree incr(&ipool, opts);
  for (size_t i = 0; i < n; ++i) incr.Insert(entries[i].rect, i);

  EXPECT_EQ(bulk.size(), n);
  EXPECT_EQ(bulk.Validate(), "");
  for (int t = 0; t < 40; ++t) {
    std::vector<double> q(dim);
    for (auto& v : q) v = rng.NextDouble();
    auto a = bulk.KnnQuery(q.data(), 5);
    auto b = incr.KnnQuery(q.data(), 5);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].dist, b[i].dist, 1e-12);
    }
  }
}

TEST(BulkLoadTest, SupportsSubsequentInsertsAndDeletes) {
  Rng rng(4);
  const size_t dim = 3;
  PageFile file(1024);
  BufferPool pool(&file, 4096);
  TreeOptions opts;
  opts.dim = dim;
  RStarTree tree(&pool, opts);
  std::vector<Entry> entries(500);
  std::vector<std::vector<double>> coords;
  for (size_t i = 0; i < 500; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    coords.push_back(p);
    entries[i].rect = HyperRect::FromPoint(p);
    entries[i].id = i;
  }
  tree.BulkLoad(entries);
  ASSERT_EQ(tree.Validate(), "");
  // Dynamic phase on a packed tree.
  for (size_t i = 500; i < 700; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    coords.push_back(p);
    tree.Insert(HyperRect::FromPoint(p), i);
  }
  for (size_t i = 0; i < 200; i += 2) {
    ASSERT_TRUE(tree.Delete(HyperRect::FromPoint(coords[i]), i));
  }
  ASSERT_EQ(tree.Validate(), "");
  EXPECT_EQ(tree.size(), 600u);
}

TEST(BulkLoadTest, EmptyLoadIsNoop) {
  PageFile file(1024);
  BufferPool pool(&file, 64);
  TreeOptions opts;
  opts.dim = 2;
  RStarTree tree(&pool, opts);
  tree.BulkLoad({});
  EXPECT_EQ(tree.size(), 0u);
  double q[2] = {0.5, 0.5};
  EXPECT_TRUE(tree.KnnQuery(q, 1).empty());
}

TEST(BulkLoadTest, PackedTreeHasHighFill) {
  Rng rng(5);
  const size_t dim = 2;
  PageFile ifile(1024), bfile(1024);
  BufferPool ipool(&ifile, 8192), bpool(&bfile, 8192);
  TreeOptions opts;
  opts.dim = dim;
  RStarTree incr(&ipool, opts);
  RStarTree bulk(&bpool, opts);
  std::vector<Entry> entries(4000);
  for (size_t i = 0; i < entries.size(); ++i) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    entries[i].rect = HyperRect({x, y}, {x, y});
    entries[i].id = i;
    incr.Insert(entries[i].rect, i);
  }
  bulk.BulkLoad(entries);
  auto bi = bulk.Info();
  auto ii = incr.Info();
  EXPECT_LT(bi.num_leaves, ii.num_leaves);  // denser packing
}

// ---------- NN-cell k-NN extension ----------

struct KnnFixture {
  KnnFixture(size_t dim, const PointSet& pts,
             ApproxAlgorithm alg = ApproxAlgorithm::kSphere)
      : file(2048), pool(&file, 16384) {
    NNCellOptions opts;
    opts.algorithm = alg;
    index = std::make_unique<NNCellIndex>(&pool, dim, opts);
    EXPECT_TRUE(index->BulkBuild(pts).ok());
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<NNCellIndex> index;
};

std::vector<double> BruteKnnDists(const PointSet& pts, const double* q,
                                  size_t k) {
  std::vector<double> d;
  for (size_t i = 0; i < pts.size(); ++i) {
    d.push_back(L2Dist(pts[i], q, pts.dim()));
  }
  std::sort(d.begin(), d.end());
  d.resize(std::min(k, d.size()));
  return d;
}

class NNCellKnnTest : public ::testing::TestWithParam<std::tuple<size_t, size_t>> {};

TEST_P(NNCellKnnTest, MatchesBruteForce) {
  const size_t dim = std::get<0>(GetParam());
  const size_t k = std::get<1>(GetParam());
  PointSet pts = GenerateUniform(200, dim, 31 + dim);
  KnnFixture fx(dim, pts);
  PointSet queries = GenerateQueries(50, dim, 77);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto r = fx.index->KnnQuery(queries[t], k);
    ASSERT_TRUE(r.ok());
    auto expected = BruteKnnDists(pts, queries[t], k);
    ASSERT_EQ(r->size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*r)[i].dist, expected[i], 1e-9)
          << "query " << t << " i " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NNCellKnnTest,
    ::testing::Combine(::testing::Values(2, 4, 6),
                       ::testing::Values(1, 3, 10, 25)));

TEST(NNCellKnnTest, KLargerThanN) {
  PointSet pts = GenerateUniform(7, 3, 3);
  KnnFixture fx(3, pts);
  auto r = fx.index->KnnQuery({0.5, 0.5, 0.5}, 50);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 7u);
}

TEST(NNCellKnnTest, KZero) {
  PointSet pts = GenerateUniform(10, 2, 4);
  KnnFixture fx(2, pts);
  auto r = fx.index->KnnQuery({0.5, 0.5}, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(NNCellKnnTest, EmptyIndexFails) {
  PageFile file(2048);
  BufferPool pool(&file, 64);
  NNCellIndex index(&pool, 2, NNCellOptions{});
  auto r = index.KnnQuery({0.5, 0.5}, 3);
  EXPECT_FALSE(r.ok());
}

TEST(NNCellKnnTest, QueryAtDataPoint) {
  PointSet pts = GenerateUniform(100, 3, 5);
  KnnFixture fx(3, pts);
  auto r = fx.index->KnnQuery(pts.Get(17), 5);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->size(), 5u);
  EXPECT_EQ((*r)[0].id, 17u);
  EXPECT_NEAR((*r)[0].dist, 0.0, 1e-12);
  for (size_t i = 1; i < r->size(); ++i) {
    EXPECT_GE((*r)[i].dist, (*r)[i - 1].dist);
  }
}

TEST(NNCellKnnTest, ClusteredDataAllStrategies) {
  PointSet pts = GenerateClusters(150, 4, 3, 0.06, 9);
  for (ApproxAlgorithm alg :
       {ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
        ApproxAlgorithm::kSphere, ApproxAlgorithm::kNNDirection}) {
    KnnFixture fx(4, pts, alg);
    const PointSet& actual = fx.index->points();
    PointSet queries = GenerateQueries(25, 4, 10);
    for (size_t t = 0; t < queries.size(); ++t) {
      auto r = fx.index->KnnQuery(queries[t], 8);
      ASSERT_TRUE(r.ok());
      auto expected = BruteKnnDists(actual, queries[t], 8);
      ASSERT_EQ(r->size(), expected.size());
      for (size_t i = 0; i < expected.size(); ++i) {
        EXPECT_NEAR((*r)[i].dist, expected[i], 1e-9)
            << ApproxAlgorithmName(alg);
      }
    }
  }
}

TEST(NNCellKnnTest, WorksAfterDynamicInserts) {
  PointSet pts = GenerateUniform(80, 3, 11);
  KnnFixture fx(3, pts);
  PointSet extra = GenerateUniform(40, 3, 12);
  PointSet all(3);
  for (size_t i = 0; i < pts.size(); ++i) all.Add(pts.Get(i));
  for (size_t i = 0; i < extra.size(); ++i) {
    if (fx.index->Insert(extra.Get(i)).ok()) all.Add(extra.Get(i));
  }
  PointSet queries = GenerateQueries(30, 3, 13);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto r = fx.index->KnnQuery(queries[t], 6);
    ASSERT_TRUE(r.ok());
    auto expected = BruteKnnDists(all, queries[t], 6);
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR((*r)[i].dist, expected[i], 1e-9);
    }
  }
}

}  // namespace
}  // namespace nncell
