#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

struct IndexFixture {
  IndexFixture(size_t dim, NNCellOptions opts, size_t page_size = 2048,
               size_t pool_pages = 16384)
      : file(page_size), pool(&file, pool_pages) {
    index = std::make_unique<NNCellIndex>(&pool, dim, opts);
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<NNCellIndex> index;
};

// Brute-force NN oracle.
size_t BruteForceNN(const PointSet& pts, const double* q) {
  size_t best = 0;
  double best_d = 1e300;
  for (size_t i = 0; i < pts.size(); ++i) {
    double d = L2DistSq(pts[i], q, pts.dim());
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

void ExpectQueriesMatchBruteForce(const IndexFixture& fx, const PointSet& pts,
                                  const PointSet& queries,
                                  size_t* fallbacks = nullptr) {
  for (size_t i = 0; i < queries.size(); ++i) {
    auto result = fx.index->Query(queries[i]);
    ASSERT_TRUE(result.ok());
    size_t expected = BruteForceNN(pts, queries[i]);
    double expected_dist = L2Dist(pts[expected], queries[i], pts.dim());
    // Ties allowed: compare by distance, not id.
    EXPECT_NEAR(result->dist, expected_dist, 1e-9) << "query " << i;
    if (fallbacks != nullptr && result->used_fallback) ++(*fallbacks);
  }
}

TEST(NNCellIndexTest, EmptyIndexQueryFails) {
  IndexFixture fx(2, NNCellOptions{});
  auto r = fx.index->Query({0.5, 0.5});
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(NNCellIndexTest, SinglePointOwnsWholeSpace) {
  IndexFixture fx(3, NNCellOptions{});
  ASSERT_TRUE(fx.index->Insert({0.3, 0.6, 0.9}).ok());
  const auto& rects = fx.index->CellRects(0);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], HyperRect::UnitCube(3));
  auto r = fx.index->Query({0.99, 0.01, 0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->id, 0u);
  EXPECT_EQ(r->candidates, 1u);
}

TEST(NNCellIndexTest, RejectsDuplicatesAndBadInput) {
  IndexFixture fx(2, NNCellOptions{});
  ASSERT_TRUE(fx.index->Insert({0.5, 0.5}).ok());
  auto dup = fx.index->Insert({0.5, 0.5});
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  auto wrong_dim = fx.index->Insert({0.5});
  EXPECT_EQ(wrong_dim.status().code(), StatusCode::kInvalidArgument);
  auto outside = fx.index->Insert({1.5, 0.5});
  EXPECT_EQ(outside.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(fx.index->size(), 1u);
}

struct StrategyCase {
  ApproxAlgorithm algorithm;
  bool use_xtree;
  size_t decomposition;
};

class NNCellStrategyTest : public ::testing::TestWithParam<StrategyCase> {};

// The headline correctness property (Lemma 2): for every strategy,
// decomposition setting and underlying tree, the NN-cell query returns the
// exact nearest neighbor.
TEST_P(NNCellStrategyTest, ExactNNOnUniformData) {
  const StrategyCase& c = GetParam();
  NNCellOptions opts;
  opts.algorithm = c.algorithm;
  opts.use_xtree = c.use_xtree;
  opts.decomposition.max_partitions = c.decomposition;
  for (size_t dim : {2u, 5u}) {
    IndexFixture fx(dim, opts);
    PointSet pts = GenerateUniform(120, dim, 42 + dim);
    ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
    EXPECT_EQ(fx.index->ValidateTree(), "");
    PointSet queries = GenerateQueries(150, dim, 7);
    ExpectQueriesMatchBruteForce(fx, pts, queries);
  }
}

TEST_P(NNCellStrategyTest, ExactNNOnClusteredData) {
  const StrategyCase& c = GetParam();
  NNCellOptions opts;
  opts.algorithm = c.algorithm;
  opts.use_xtree = c.use_xtree;
  opts.decomposition.max_partitions = c.decomposition;
  IndexFixture fx(4, opts);
  PointSet pts = GenerateClusters(100, 4, 4, 0.05, 17);
  // Clustered generation can rarely duplicate; BulkBuild skips those.
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  PointSet queries = GenerateQueries(120, 4, 3);
  // Rebuild the oracle set from the actually inserted points.
  ExpectQueriesMatchBruteForce(fx, fx.index->points(), queries);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, NNCellStrategyTest,
    ::testing::Values(
        StrategyCase{ApproxAlgorithm::kCorrect, true, 1},
        StrategyCase{ApproxAlgorithm::kCorrect, false, 1},
        StrategyCase{ApproxAlgorithm::kCorrect, true, 6},
        StrategyCase{ApproxAlgorithm::kPoint, true, 1},
        StrategyCase{ApproxAlgorithm::kPoint, true, 4},
        StrategyCase{ApproxAlgorithm::kSphere, true, 1},
        StrategyCase{ApproxAlgorithm::kSphere, false, 1},
        StrategyCase{ApproxAlgorithm::kSphere, true, 8},
        StrategyCase{ApproxAlgorithm::kNNDirection, true, 1},
        StrategyCase{ApproxAlgorithm::kNNDirection, true, 4}),
    [](const ::testing::TestParamInfo<StrategyCase>& info) {
      std::string name = ApproxAlgorithmName(info.param.algorithm);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      name += info.param.use_xtree ? "_X" : "_R";
      name += "_k" + std::to_string(info.param.decomposition);
      return name;
    });

TEST(NNCellIndexTest, GridDataIsPerfectlyApproximated) {
  // Fig. 2c/d: regular grid => MBRs == cells, exactly one candidate per
  // query, ExpectedCandidates == 1.
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  IndexFixture fx(2, opts);
  PointSet pts = GenerateGrid(4, 2, 0.0, 1);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  EXPECT_NEAR(fx.index->ExpectedCandidates(), 1.0, 1e-6);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble()};
    auto r = fx.index->Query(q);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->candidates, 1u);
    EXPECT_EQ(r->id, BruteForceNN(pts, q.data()));
  }
}

TEST(NNCellIndexTest, Lemma1OptimizedApproxContainsCorrect) {
  // Build the same data with Correct and with each optimized algorithm;
  // every optimized cell MBR must contain the correct one.
  PointSet pts = GenerateUniform(80, 4, 99);
  NNCellOptions correct_opts;
  correct_opts.algorithm = ApproxAlgorithm::kCorrect;
  IndexFixture correct_fx(4, correct_opts);
  ASSERT_TRUE(correct_fx.index->BulkBuild(pts).ok());

  for (ApproxAlgorithm alg : {ApproxAlgorithm::kPoint, ApproxAlgorithm::kSphere,
                              ApproxAlgorithm::kNNDirection}) {
    NNCellOptions opts;
    opts.algorithm = alg;
    IndexFixture fx(4, opts);
    ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
    for (uint64_t id = 0; id < pts.size(); ++id) {
      const auto& correct = correct_fx.index->CellRects(id);
      const auto& optimized = fx.index->CellRects(id);
      ASSERT_EQ(correct.size(), 1u);
      ASSERT_EQ(optimized.size(), 1u);
      for (size_t k = 0; k < 4; ++k) {
        EXPECT_LE(optimized[0].lo(k), correct[0].lo(k) + 1e-7)
            << ApproxAlgorithmName(alg) << " cell " << id;
        EXPECT_GE(optimized[0].hi(k), correct[0].hi(k) - 1e-7)
            << ApproxAlgorithmName(alg) << " cell " << id;
      }
    }
    // Consequently the optimized index has at least as much overlap.
    EXPECT_GE(fx.index->ExpectedCandidates(),
              correct_fx.index->ExpectedCandidates() - 1e-6);
  }
}

TEST(NNCellIndexTest, DynamicInsertKeepsQueriesExact) {
  // Interleave inserts and queries; maintenance shrinks stale cells.
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  IndexFixture fx(3, opts);
  PointSet pts = GenerateUniform(150, 3, 1234);
  PointSet inserted(3);
  Rng rng(4321);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(fx.index->Insert(pts.Get(i)).ok());
    inserted.Add(pts.Get(i));
    if (i % 10 == 9) {
      for (int t = 0; t < 5; ++t) {
        std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                                 rng.NextDouble()};
        auto r = fx.index->Query(q);
        ASSERT_TRUE(r.ok());
        size_t expected = BruteForceNN(inserted, q.data());
        EXPECT_NEAR(r->dist, L2Dist(inserted[expected], q.data(), 3), 1e-9);
      }
    }
  }
  EXPECT_EQ(fx.index->ValidateTree(), "");
  EXPECT_GT(fx.index->build_stats().cells_recomputed, 0u);
}

TEST(NNCellIndexTest, MaintenanceModesAllCorrectButDifferQuality) {
  PointSet pts = GenerateUniform(120, 2, 5);
  PointSet queries = GenerateQueries(200, 2, 6);
  double overlap_none = 0.0, overlap_exact = 0.0;
  for (MaintenanceMode mode :
       {MaintenanceMode::kNone, MaintenanceMode::kSphere,
        MaintenanceMode::kExact}) {
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kCorrect;
    opts.maintenance = mode;
    IndexFixture fx(2, opts);
    for (size_t i = 0; i < pts.size(); ++i) {
      ASSERT_TRUE(fx.index->Insert(pts.Get(i)).ok());  // dynamic path
    }
    ExpectQueriesMatchBruteForce(fx, pts, queries);
    if (mode == MaintenanceMode::kNone) {
      overlap_none = fx.index->ExpectedCandidates();
    }
    if (mode == MaintenanceMode::kExact) {
      overlap_exact = fx.index->ExpectedCandidates();
    }
  }
  // Without maintenance the stale cells overlap far more. With exact
  // maintenance the MBRs still overlap a bit (Voronoi polygons are not
  // boxes), but stay close to a tiling in 2-D.
  EXPECT_GT(overlap_none, overlap_exact);
  EXPECT_GE(overlap_exact, 1.0 - 1e-9);
  EXPECT_LT(overlap_exact, 2.5);
}

TEST(NNCellIndexTest, IncrementalExactMaintenanceEqualsStaticBuild) {
  // After an incremental build with exact maintenance and the Correct
  // algorithm, every cell MBR must equal the one a static build computes:
  // maintenance fully repairs the stale approximations.
  PointSet pts = GenerateUniform(60, 3, 77);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  opts.maintenance = MaintenanceMode::kExact;
  IndexFixture incremental(3, opts);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_TRUE(incremental.index->Insert(pts.Get(i)).ok());
  }

  IndexFixture statically(3, opts);
  ASSERT_TRUE(statically.index->BulkBuild(pts).ok());

  for (size_t i = 0; i < pts.size(); ++i) {
    const auto& a = incremental.index->CellRects(i);
    const auto& b = statically.index->CellRects(i);
    ASSERT_EQ(a.size(), 1u);
    ASSERT_EQ(b.size(), 1u);
    for (size_t k = 0; k < 3; ++k) {
      EXPECT_NEAR(a[0].lo(k), b[0].lo(k), 1e-7) << "cell " << i;
      EXPECT_NEAR(a[0].hi(k), b[0].hi(k), 1e-7) << "cell " << i;
    }
  }
}

TEST(NNCellIndexTest, CellsUnionCoversSpace) {
  // The approximations must cover the whole data space (they are supersets
  // of the NN-cells, which tile it).
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kNNDirection;
  IndexFixture fx(2, opts);
  PointSet pts = GenerateUniform(50, 2, 31);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  Rng rng(32);
  for (int t = 0; t < 500; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble()};
    bool covered = false;
    for (uint64_t id = 0; id < pts.size() && !covered; ++id) {
      for (const auto& rect : fx.index->CellRects(id)) {
        if (rect.ContainsPoint(q)) {
          covered = true;
          break;
        }
      }
    }
    EXPECT_TRUE(covered);
  }
}

TEST(NNCellIndexTest, QueryPointQueryUsesFewPages) {
  // The paper's claim: a NN query on the NN-cell index is a point query
  // costing O(height + candidates) pages, not a full NN traversal.
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  IndexFixture fx(4, opts, /*page_size=*/2048, /*pool_pages=*/65536);
  PointSet pts = GenerateUniform(800, 4, 8);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  auto info = fx.index->TreeInfo();
  fx.pool.DropCache();
  fx.pool.ResetStats();
  auto r = fx.index->Query({0.4, 0.6, 0.3, 0.8});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(fx.pool.stats().physical_reads, info.total_pages / 2);
}

TEST(NNCellIndexTest, FourierDataExactness) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kNNDirection;
  IndexFixture fx(6, opts);
  PointSet pts = GenerateFourier(150, 6, 55);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  PointSet queries = GenerateQueries(100, 6, 56);
  ExpectQueriesMatchBruteForce(fx, fx.index->points(), queries);
}

TEST(NNCellIndexTest, SparseWorstCaseStillExact) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  IndexFixture fx(8, opts);
  PointSet pts = GenerateSparse(12, 8, 21);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  // Sparse high-d: approximations nearly cover the space -> candidates
  // approach N, but results stay exact (Fig. 2e/f discussion).
  EXPECT_GT(fx.index->ExpectedCandidates(), 2.0);
  PointSet queries = GenerateQueries(80, 8, 22);
  ExpectQueriesMatchBruteForce(fx, pts, queries);
}

TEST(NNCellIndexTest, DecompositionReducesOverlap) {
  // Fig. 13: decomposed approximations overlap less than exact one-piece
  // approximations on irregular data.
  PointSet pts = GenerateClusters(80, 6, 3, 0.08, 13);
  NNCellOptions exact;
  exact.algorithm = ApproxAlgorithm::kCorrect;
  IndexFixture fx_exact(6, exact);
  ASSERT_TRUE(fx_exact.index->BulkBuild(pts).ok());

  NNCellOptions decomposed = exact;
  decomposed.decomposition.max_partitions = 8;
  decomposed.decomposition.max_split_dims = 3;
  IndexFixture fx_dec(6, decomposed);
  ASSERT_TRUE(fx_dec.index->BulkBuild(pts).ok());

  EXPECT_LT(fx_dec.index->ExpectedCandidates(),
            fx_exact.index->ExpectedCandidates());
  // And stays exact.
  PointSet queries = GenerateQueries(80, 6, 14);
  ExpectQueriesMatchBruteForce(fx_dec, fx_dec.index->points(), queries);
}

TEST(NNCellIndexTest, QueriesAtDataPointsReturnThemselves) {
  NNCellOptions opts;
  IndexFixture fx(3, opts);
  PointSet pts = GenerateUniform(60, 3, 61);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  for (size_t i = 0; i < pts.size(); ++i) {
    auto r = fx.index->Query(pts[i]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->id, i);
    EXPECT_NEAR(r->dist, 0.0, 1e-12);
  }
}

TEST(NNCellIndexTest, CheckInvariantsOnEveryLifecyclePhase) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  IndexFixture fx(3, opts);
  // Empty index: trivially consistent.
  ASSERT_TRUE(fx.index->CheckInvariants(10).ok());
  // Static build.
  PointSet pts = GenerateUniform(80, 3, 123);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  ASSERT_TRUE(fx.index->CheckInvariants(50).ok());
  // Dynamic inserts.
  Rng rng(456);
  for (int i = 0; i < 15; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    ASSERT_TRUE(fx.index->Insert(p).ok());
  }
  ASSERT_TRUE(fx.index->CheckInvariants(50).ok());
  // Deletions.
  for (uint64_t id = 0; id < 20; id += 2) {
    ASSERT_TRUE(fx.index->Delete(id).ok());
  }
  Status st = fx.index->CheckInvariants(50);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(NNCellIndexTest, CheckInvariantsWithDecompositionAndWeights) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  opts.decomposition.max_partitions = 6;
  opts.weights = {2.0, 0.5, 1.0, 3.0};
  IndexFixture fx(4, opts);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(60, 4, 321)).ok());
  Status st = fx.index->CheckInvariants(50);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(NNCellIndexTest, BuildStatsArepopulated) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  IndexFixture fx(3, opts);
  PointSet pts = GenerateUniform(40, 3, 91);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  const auto& stats = fx.index->build_stats();
  // 2d LPs per computed cell, at least one per point.
  EXPECT_GE(stats.approx.lp_runs, 2 * 3 * pts.size());
  EXPECT_GT(stats.approx.lp_iterations, stats.approx.lp_runs);
  EXPECT_GE(stats.entries_inserted, pts.size());
  EXPECT_EQ(stats.approx.lp_failures, 0u);
}

}  // namespace
}  // namespace nncell
