// Round-trip tests for index persistence: a saved and reloaded index must
// answer every query identically and remain fully mutable.

#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

TEST(PageFilePersistenceTest, RoundTrip) {
  PageFile file(256);
  PageId a = file.Allocate();
  PageId b = file.Allocate();
  std::vector<uint8_t> data(256, 0x5a);
  file.Write(a, data.data());
  file.Free(b);

  std::stringstream stream;
  ASSERT_TRUE(file.SaveTo(stream).ok());

  PageFile restored(256);
  ASSERT_TRUE(restored.LoadFrom(stream).ok());
  EXPECT_EQ(restored.num_pages(), 2u);
  std::vector<uint8_t> out(256);
  restored.Read(a, out.data());
  EXPECT_EQ(out, data);
  // Free list survives: next allocation reuses b.
  EXPECT_EQ(restored.Allocate(), b);
}

TEST(PageFilePersistenceTest, PageSizeMismatchRejected) {
  PageFile file(256);
  file.Allocate();
  std::stringstream stream;
  ASSERT_TRUE(file.SaveTo(stream).ok());
  PageFile other(512);
  EXPECT_FALSE(other.LoadFrom(stream).ok());
}

TEST(PageFilePersistenceTest, GarbageRejected) {
  std::stringstream stream("this is not a page file at all............");
  PageFile file(256);
  EXPECT_FALSE(file.LoadFrom(stream).ok());
}

struct SavedIndex {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
};

SavedIndex BuildSample(size_t dim, size_t n, NNCellOptions opts,
                       uint64_t seed) {
  SavedIndex s;
  s.file = std::make_unique<PageFile>(2048);
  s.pool = std::make_unique<BufferPool>(s.file.get(), 8192);
  s.index = std::make_unique<NNCellIndex>(s.pool.get(), dim, opts);
  EXPECT_TRUE(s.index->BulkBuild(GenerateUniform(n, dim, seed)).ok());
  return s;
}

TEST(IndexPersistenceTest, RoundTripQueriesIdentical) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  SavedIndex original = BuildSample(4, 150, opts, 1);

  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());

  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->size(), original.index->size());
  EXPECT_EQ((*loaded)->dim(), original.index->dim());
  EXPECT_EQ((*loaded)->ValidateTree(), "");
  EXPECT_NEAR((*loaded)->ExpectedCandidates(),
              original.index->ExpectedCandidates(), 1e-12);

  PointSet queries = GenerateQueries(100, 4, 2);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto a = original.index->Query(queries[t]);
    auto b = (*loaded)->Query(queries[t]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->id, b->id) << t;
    EXPECT_DOUBLE_EQ(a->dist, b->dist);
    EXPECT_EQ(a->candidates, b->candidates);
  }
}

TEST(IndexPersistenceTest, LoadedIndexIsMutable) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(3, 100, opts, 3);
  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());

  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  ASSERT_TRUE(loaded.ok());

  // Insert, delete and re-query on the restored index.
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto id = (*loaded)->Insert(p);
    ASSERT_TRUE(id.ok());
    auto r = (*loaded)->Query(p);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->id, *id);
  }
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*loaded)->Delete(i).ok());
  }
  EXPECT_EQ((*loaded)->size(), 110u);
  EXPECT_EQ((*loaded)->ValidateTree(), "");
}

TEST(IndexPersistenceTest, PreservesDeletionsAndWeights) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  opts.weights = {2.0, 0.5};
  SavedIndex original = BuildSample(2, 60, opts, 5);
  ASSERT_TRUE(original.index->Delete(10).ok());
  ASSERT_TRUE(original.index->Delete(11).ok());

  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());
  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ((*loaded)->size(), 58u);
  EXPECT_FALSE((*loaded)->IsAlive(10));
  EXPECT_TRUE((*loaded)->IsAlive(12));
  EXPECT_EQ((*loaded)->options().weights, opts.weights);

  PointSet queries = GenerateQueries(50, 2, 6);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto a = original.index->Query(queries[t]);
    auto b = (*loaded)->Query(queries[t]);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->id, b->id);
    EXPECT_DOUBLE_EQ(a->dist, b->dist);
  }
}

TEST(IndexPersistenceTest, FileRoundTrip) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(3, 80, opts, 7);
  const char* path = "/tmp/nncell_persistence_test.idx";
  ASSERT_TRUE(original.index->Save(std::string(path)).ok());

  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(std::string(path), &file, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 80u);
  std::remove(path);
}

TEST(IndexPersistenceTest, GarbageRejected) {
  std::stringstream stream("garbage bytes here, not an index.........");
  PageFile file(2048);
  BufferPool pool(&file, 64);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  EXPECT_FALSE(loaded.ok());
}

TEST(IndexPersistenceTest, MismatchedPoolRejected) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(2, 20, opts, 8);
  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());
  PageFile file_a(2048), file_b(2048);
  BufferPool pool(&file_a, 64);
  auto loaded = NNCellIndex::Load(stream, &file_b, &pool);
  EXPECT_FALSE(loaded.ok());
}

}  // namespace
}  // namespace nncell
