// Round-trip tests for index persistence: a saved and reloaded index must
// answer every query identically and remain fully mutable.

#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

TEST(PageFilePersistenceTest, RoundTrip) {
  PageFile file(256);
  PageId a = file.Allocate();
  PageId b = file.Allocate();
  std::vector<uint8_t> data(256, 0x5a);
  file.Write(a, data.data());
  file.Free(b);

  std::stringstream stream;
  ASSERT_TRUE(file.SaveTo(stream).ok());

  PageFile restored(256);
  ASSERT_TRUE(restored.LoadFrom(stream).ok());
  EXPECT_EQ(restored.num_pages(), 2u);
  std::vector<uint8_t> out(256);
  restored.Read(a, out.data());
  EXPECT_EQ(out, data);
  // Free list survives: next allocation reuses b.
  EXPECT_EQ(restored.Allocate(), b);
}

TEST(PageFilePersistenceTest, PageSizeMismatchRejected) {
  PageFile file(256);
  file.Allocate();
  std::stringstream stream;
  ASSERT_TRUE(file.SaveTo(stream).ok());
  PageFile other(512);
  EXPECT_FALSE(other.LoadFrom(stream).ok());
}

TEST(PageFilePersistenceTest, GarbageRejected) {
  std::stringstream stream("this is not a page file at all............");
  PageFile file(256);
  EXPECT_FALSE(file.LoadFrom(stream).ok());
}

struct SavedIndex {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
};

SavedIndex BuildSample(size_t dim, size_t n, NNCellOptions opts,
                       uint64_t seed) {
  SavedIndex s;
  s.file = std::make_unique<PageFile>(2048);
  s.pool = std::make_unique<BufferPool>(s.file.get(), 8192);
  s.index = std::make_unique<NNCellIndex>(s.pool.get(), dim, opts);
  EXPECT_TRUE(s.index->BulkBuild(GenerateUniform(n, dim, seed)).ok());
  return s;
}

TEST(IndexPersistenceTest, RoundTripQueriesIdentical) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  SavedIndex original = BuildSample(4, 150, opts, 1);

  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());

  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->size(), original.index->size());
  EXPECT_EQ((*loaded)->dim(), original.index->dim());
  EXPECT_EQ((*loaded)->ValidateTree(), "");
  EXPECT_NEAR((*loaded)->ExpectedCandidates(),
              original.index->ExpectedCandidates(), 1e-12);

  PointSet queries = GenerateQueries(100, 4, 2);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto a = original.index->Query(queries[t]);
    auto b = (*loaded)->Query(queries[t]);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->id, b->id) << t;
    EXPECT_DOUBLE_EQ(a->dist, b->dist);
    EXPECT_EQ(a->candidates, b->candidates);
  }
}

TEST(IndexPersistenceTest, LoadedIndexIsMutable) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(3, 100, opts, 3);
  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());

  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  ASSERT_TRUE(loaded.ok());

  // Insert, delete and re-query on the restored index.
  Rng rng(4);
  for (int i = 0; i < 20; ++i) {
    std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto id = (*loaded)->Insert(p);
    ASSERT_TRUE(id.ok());
    auto r = (*loaded)->Query(p);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->id, *id);
  }
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE((*loaded)->Delete(i).ok());
  }
  EXPECT_EQ((*loaded)->size(), 110u);
  EXPECT_EQ((*loaded)->ValidateTree(), "");
}

TEST(IndexPersistenceTest, PreservesDeletionsAndWeights) {
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  opts.weights = {2.0, 0.5};
  SavedIndex original = BuildSample(2, 60, opts, 5);
  ASSERT_TRUE(original.index->Delete(10).ok());
  ASSERT_TRUE(original.index->Delete(11).ok());

  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());
  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  ASSERT_TRUE(loaded.ok());

  EXPECT_EQ((*loaded)->size(), 58u);
  EXPECT_FALSE((*loaded)->IsAlive(10));
  EXPECT_TRUE((*loaded)->IsAlive(12));
  EXPECT_EQ((*loaded)->options().weights, opts.weights);

  PointSet queries = GenerateQueries(50, 2, 6);
  for (size_t t = 0; t < queries.size(); ++t) {
    auto a = original.index->Query(queries[t]);
    auto b = (*loaded)->Query(queries[t]);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->id, b->id);
    EXPECT_DOUBLE_EQ(a->dist, b->dist);
  }
}

TEST(IndexPersistenceTest, FileRoundTrip) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(3, 80, opts, 7);
  const char* path = "/tmp/nncell_persistence_test.idx";
  ASSERT_TRUE(original.index->Save(std::string(path)).ok());

  PageFile file(2048);
  BufferPool pool(&file, 8192);
  auto loaded = NNCellIndex::Load(std::string(path), &file, &pool);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), 80u);
  std::remove(path);
}

TEST(IndexPersistenceTest, GarbageRejected) {
  std::stringstream stream("garbage bytes here, not an index.........");
  PageFile file(2048);
  BufferPool pool(&file, 64);
  auto loaded = NNCellIndex::Load(stream, &file, &pool);
  EXPECT_FALSE(loaded.ok());
}

TEST(IndexPersistenceTest, MismatchedPoolRejected) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(2, 20, opts, 8);
  std::stringstream stream;
  ASSERT_TRUE(original.index->Save(stream).ok());
  PageFile file_a(2048), file_b(2048);
  BufferPool pool(&file_a, 64);
  auto loaded = NNCellIndex::Load(stream, &file_b, &pool);
  EXPECT_FALSE(loaded.ok());
}

std::string SerializeToString(const NNCellIndex& index) {
  std::stringstream stream;
  EXPECT_TRUE(index.Save(stream).ok());
  return stream.str();
}

StatusOr<std::unique_ptr<NNCellIndex>> LoadString(const std::string& image,
                                                  PageFile* file,
                                                  BufferPool* pool) {
  std::stringstream stream(image);
  return NNCellIndex::Load(stream, file, pool);
}

// Each rejection names its cause precisely (the exact phrases are part of
// the documented format contract, docs/PERSISTENCE.md).
TEST(IndexPersistenceTest, FailureModesHavePreciseErrors) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(2, 30, opts, 9);
  const std::string image = SerializeToString(*original.index);

  struct Case {
    const char* name;
    size_t offset;
    const char* expect;
  };
  // Offsets per the header layout: magic at 0, version at 8.
  const Case cases[] = {
      {"magic", 0, "bad magic"},
      {"version", 8, "unsupported snapshot version"},
      {"header body", 20, "header checksum mismatch"},
  };
  for (const Case& c : cases) {
    std::string damaged = image;
    damaged[c.offset] ^= 0x04;
    PageFile file(2048);
    BufferPool pool(&file, 64);
    auto loaded = LoadString(damaged, &file, &pool);
    ASSERT_FALSE(loaded.ok()) << c.name;
    EXPECT_NE(loaded.status().message().find(c.expect), std::string::npos)
        << c.name << ": " << loaded.status().ToString();
  }

  // Truncation is named as such (the footer magic check catches it first).
  {
    PageFile file(2048);
    BufferPool pool(&file, 64);
    auto loaded = LoadString(image.substr(0, image.size() / 2), &file, &pool);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("footer"), std::string::npos)
        << loaded.status().ToString();
  }

  // Body damage behind a valid header is caught by the whole-file CRC.
  {
    std::string damaged = image;
    damaged[image.size() / 2] ^= 0x01;
    PageFile file(2048);
    BufferPool pool(&file, 64);
    auto loaded = LoadString(damaged, &file, &pool);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("checksum mismatch"),
              std::string::npos)
        << loaded.status().ToString();
  }

  // Page-size mismatch between snapshot and target file.
  {
    PageFile file(1024);
    BufferPool pool(&file, 64);
    auto loaded = LoadString(image, &file, &pool);
    ASSERT_FALSE(loaded.ok());
    EXPECT_NE(loaded.status().message().find("page size"), std::string::npos)
        << loaded.status().ToString();
  }
}

// A failed load must leave a previously loaded index -- and the PageFile /
// BufferPool it lives in -- completely untouched (the all-or-nothing
// contract: validate everything, then commit).
TEST(IndexPersistenceTest, FailedLoadLeavesExistingStateUntouched) {
  NNCellOptions opts;
  SavedIndex original = BuildSample(3, 80, opts, 14);
  const std::string image = SerializeToString(*original.index);

  PointSet queries = GenerateQueries(60, 3, 15);
  std::vector<uint64_t> before_ids;
  for (size_t t = 0; t < queries.size(); ++t) {
    auto r = original.index->Query(queries[t]);
    ASSERT_TRUE(r.ok());
    before_ids.push_back(r->id);
  }
  const size_t before_pages = original.file->num_pages();

  // Try to load progressively damaged images into the live index's own
  // file and pool; every attempt must fail and change nothing.
  for (size_t tweak = 0; tweak < 6; ++tweak) {
    std::string damaged = image;
    damaged[(tweak * 131) % image.size()] ^= static_cast<char>(1u << tweak);
    auto loaded = LoadString(damaged, original.file.get(),
                             original.pool.get());
    ASSERT_FALSE(loaded.ok()) << "tweak " << tweak;
  }
  {
    auto loaded = LoadString(image.substr(0, image.size() - 7),
                             original.file.get(), original.pool.get());
    ASSERT_FALSE(loaded.ok());
  }

  EXPECT_EQ(original.file->num_pages(), before_pages);
  EXPECT_EQ(original.index->ValidateTree(), "");
  for (size_t t = 0; t < queries.size(); ++t) {
    auto r = original.index->Query(queries[t]);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->id, before_ids[t]) << "query " << t;
  }
  ASSERT_TRUE(original.index->CheckInvariants(40).ok());
}

}  // namespace
}  // namespace nncell
