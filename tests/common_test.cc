#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/crc32c.h"
#include "common/distance.h"
#include "common/failpoint.h"
#include "common/hyper_rect.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace nncell {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_NE(s.ToString().find("NOT_FOUND"), std::string::npos);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::InvalidArgument("bad");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, DoublesInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, UniformMean) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.Add(rng.NextDouble());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.005);
}

TEST(RngTest, IndexInRange) {
  Rng rng(3);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10000; ++i) ++hits[rng.NextIndex(10)];
  for (int h : hits) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(RngTest, GaussianMoments) {
  Rng rng(5);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.Add(rng.NextGaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(HyperRectTest, UnitCube) {
  HyperRect r = HyperRect::UnitCube(4);
  EXPECT_EQ(r.dim(), 4u);
  EXPECT_DOUBLE_EQ(r.Volume(), 1.0);
  EXPECT_DOUBLE_EQ(r.Margin(), 4.0);
  EXPECT_FALSE(r.IsEmpty());
}

TEST(HyperRectTest, EmptyRect) {
  HyperRect r = HyperRect::Empty(3);
  EXPECT_TRUE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);
  double p[3] = {0.5, 0.5, 0.5};
  r.ExpandToPoint(p);
  EXPECT_FALSE(r.IsEmpty());
  EXPECT_DOUBLE_EQ(r.Volume(), 0.0);  // degenerate but not empty
  EXPECT_TRUE(r.ContainsPoint(p));
}

TEST(HyperRectTest, ContainsAndIntersects) {
  HyperRect a({0.0, 0.0}, {1.0, 1.0});
  HyperRect b({0.25, 0.25}, {0.5, 0.5});
  HyperRect c({2.0, 2.0}, {3.0, 3.0});
  EXPECT_TRUE(a.ContainsRect(b));
  EXPECT_FALSE(b.ContainsRect(a));
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  // Touching rectangles intersect.
  HyperRect t({1.0, 0.0}, {2.0, 1.0});
  EXPECT_TRUE(a.Intersects(t));
}

TEST(HyperRectTest, UnionIntersectionOverlap) {
  HyperRect a({0.0, 0.0}, {2.0, 1.0});
  HyperRect b({1.0, 0.5}, {3.0, 2.0});
  HyperRect u = HyperRect::Union(a, b);
  EXPECT_EQ(u, HyperRect({0.0, 0.0}, {3.0, 2.0}));
  HyperRect i = HyperRect::Intersection(a, b);
  EXPECT_EQ(i, HyperRect({1.0, 0.5}, {2.0, 1.0}));
  EXPECT_DOUBLE_EQ(HyperRect::OverlapVolume(a, b), 0.5);
  HyperRect c({5.0, 5.0}, {6.0, 6.0});
  EXPECT_TRUE(HyperRect::Intersection(a, c).IsEmpty());
  EXPECT_DOUBLE_EQ(HyperRect::OverlapVolume(a, c), 0.0);
}

TEST(HyperRectTest, Enlargement) {
  HyperRect a({0.0, 0.0}, {1.0, 1.0});
  HyperRect b({1.0, 0.0}, {2.0, 1.0});
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(a), 0.0);
}

TEST(HyperRectTest, MinMaxDist) {
  HyperRect r({1.0, 1.0}, {2.0, 2.0});
  double inside[2] = {1.5, 1.5};
  EXPECT_DOUBLE_EQ(r.MinDistSq(inside), 0.0);
  double outside[2] = {0.0, 1.5};
  EXPECT_DOUBLE_EQ(r.MinDistSq(outside), 1.0);
  EXPECT_DOUBLE_EQ(r.MaxDistSq(outside), 4.0 + 0.25);
  // MINMAXDIST is between MINDIST and MAXDIST.
  double q[2] = {0.0, 0.0};
  double mind = r.MinDistSq(q), maxd = r.MaxDistSq(q), mm = r.MinMaxDistSq(q);
  EXPECT_LE(mind, mm);
  EXPECT_LE(mm, maxd);
}

TEST(HyperRectTest, MinMaxDistGuarantee) {
  // MinMaxDist must upper-bound the distance to the nearest point stored on
  // the rectangle boundary in the worst case: verify against random point
  // placements on faces.
  Rng rng(99);
  HyperRect r({0.2, 0.3, 0.1}, {0.8, 0.9, 0.5});
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    double mm = r.MinMaxDistSq(q.data());
    EXPECT_GE(mm, r.MinDistSq(q.data()) - 1e-12);
    EXPECT_LE(mm, r.MaxDistSq(q.data()) + 1e-12);
  }
}

TEST(HyperRectTest, RawHelpersMatchObjectMethods) {
  Rng rng(321);
  for (int trial = 0; trial < 100; ++trial) {
    size_t d = 1 + rng.NextIndex(12);
    std::vector<double> lo(d), hi(d), q(d);
    for (size_t i = 0; i < d; ++i) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      lo[i] = std::min(a, b);
      hi[i] = std::max(a, b);
      q[i] = rng.NextDouble(-0.5, 1.5);
    }
    HyperRect r(lo, hi);
    EXPECT_EQ(RawContainsPoint(lo.data(), hi.data(), q.data(), d),
              r.ContainsPoint(q.data()));
    EXPECT_DOUBLE_EQ(RawMinDistSq(lo.data(), hi.data(), q.data(), d),
                     r.MinDistSq(q.data()));
    EXPECT_DOUBLE_EQ(RawMinMaxDistSq(lo.data(), hi.data(), q.data(), d),
                     r.MinMaxDistSq(q.data()));
    std::vector<double> lo2(d), hi2(d);
    for (size_t i = 0; i < d; ++i) {
      double a = rng.NextDouble(), b = rng.NextDouble();
      lo2[i] = std::min(a, b);
      hi2[i] = std::max(a, b);
    }
    HyperRect r2(lo2, hi2);
    EXPECT_EQ(RawIntersects(lo.data(), hi.data(), lo2.data(), hi2.data(), d),
              r.Intersects(r2));
  }
}

TEST(PointSetTest, AddAndGet) {
  PointSet ps(3);
  EXPECT_TRUE(ps.empty());
  size_t i = ps.Add({0.1, 0.2, 0.3});
  size_t j = ps.Add({0.4, 0.5, 0.6});
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(j, 1u);
  EXPECT_EQ(ps.size(), 2u);
  EXPECT_DOUBLE_EQ(ps[1][2], 0.6);
  EXPECT_EQ(ps.Get(0), (std::vector<double>{0.1, 0.2, 0.3}));
}

TEST(PointSetTest, BoundingBox) {
  PointSet ps(2);
  ps.Add({0.1, 0.9});
  ps.Add({0.5, 0.2});
  HyperRect bb = ps.BoundingBox();
  EXPECT_EQ(bb, HyperRect({0.1, 0.2}, {0.5, 0.9}));
}

TEST(DistanceTest, L2) {
  std::vector<double> a = {0.0, 0.0, 0.0};
  std::vector<double> b = {1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(L2DistSq(a, b), 9.0);
  EXPECT_DOUBLE_EQ(L2Dist(a, b), 3.0);
  EXPECT_DOUBLE_EQ(Dot(a.data(), b.data(), 3), 0.0);
  EXPECT_DOUBLE_EQ(L2NormSq(b.data(), 3), 9.0);
}

TEST(RunningStatsTest, Moments) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.Add(x);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Crc32cTest, KnownAnswer) {
  // The canonical CRC32C check value (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789", 9), 0xe3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string a = "hello, ";
  const std::string b = "durable world";
  const std::string ab = a + b;
  EXPECT_EQ(Crc32cExtend(Crc32c(a.data(), a.size()), b.data(), b.size()),
            Crc32c(ab.data(), ab.size()));
}

TEST(Crc32cTest, SingleBitFlipChangesValue) {
  std::string data(257, '\x5a');
  const uint32_t base = Crc32c(data.data(), data.size());
  for (size_t byte = 0; byte < data.size(); byte += 13) {
    for (int bit = 0; bit < 8; ++bit) {
      data[byte] ^= static_cast<char>(1 << bit);
      EXPECT_NE(Crc32c(data.data(), data.size()), base)
          << "byte " << byte << " bit " << bit;
      data[byte] ^= static_cast<char>(1 << bit);
    }
  }
}

#if NNCELL_FAILPOINTS
TEST(FailpointTest, DisarmedIsOff) {
  failpoint::DisarmAll();
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kOff);
}

TEST(FailpointTest, FiresOnceThenDisarms) {
  failpoint::DisarmAll();
  failpoint::Arm("test.site", failpoint::Action::kError);
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kError);
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kOff);
  failpoint::DisarmAll();
}

TEST(FailpointTest, SkipDelaysFiring) {
  failpoint::DisarmAll();
  failpoint::Arm("test.site", failpoint::Action::kShortWrite, /*skip=*/2);
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kOff);
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kOff);
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kShortWrite);
  // After firing, the site disarmed itself; with nothing armed the fast
  // path answers (and records nothing).
  EXPECT_EQ(failpoint::Check("test.site"), failpoint::Action::kOff);
  EXPECT_EQ(failpoint::Evaluations("test.site"), 3u);
  failpoint::DisarmAll();
}

TEST(FailpointTest, SitesAreIndependent) {
  failpoint::DisarmAll();
  failpoint::Arm("test.a", failpoint::Action::kError);
  EXPECT_EQ(failpoint::Check("test.b"), failpoint::Action::kOff);
  EXPECT_EQ(failpoint::Check("test.a"), failpoint::Action::kError);
  failpoint::DisarmAll();
}
#endif  // NNCELL_FAILPOINTS

}  // namespace
}  // namespace nncell
