#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/active_set_solver.h"
#include "lp/audit.h"
#include "lp/linalg.h"
#include "lp/lp_problem.h"

namespace nncell {
namespace {

TEST(LinalgTest, Solve2x2) {
  // [2 1; 1 3] y = [5; 10] -> y = (1, 3)
  std::vector<double> m = {2, 1, 1, 3};
  std::vector<double> r = {5, 10};
  ASSERT_TRUE(SolveLinearSystem(m, r, 2));
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 3.0, 1e-12);
}

TEST(LinalgTest, SingularDetected) {
  std::vector<double> m = {1, 2, 2, 4};
  std::vector<double> r = {1, 2};
  EXPECT_FALSE(SolveLinearSystem(m, r, 2));
}

TEST(LinalgTest, SolveNeedsPivoting) {
  // Leading zero forces a row swap.
  std::vector<double> m = {0, 1, 1, 0};
  std::vector<double> r = {2, 3};
  ASSERT_TRUE(SolveLinearSystem(m, r, 2));
  EXPECT_NEAR(r[0], 3.0, 1e-12);
  EXPECT_NEAR(r[1], 2.0, 1e-12);
}

TEST(LinalgTest, RandomSystemsRoundTrip) {
  Rng rng(42);
  for (int trial = 0; trial < 50; ++trial) {
    size_t k = 1 + rng.NextIndex(8);
    std::vector<double> m(k * k), x(k), r(k, 0.0);
    for (auto& v : m) v = rng.NextDouble(-1, 1);
    for (auto& v : x) v = rng.NextDouble(-1, 1);
    for (size_t i = 0; i < k; ++i)
      for (size_t j = 0; j < k; ++j) r[i] += m[i * k + j] * x[j];
    std::vector<double> m_copy = m, r_copy = r;
    if (!SolveLinearSystem(m_copy, r_copy, k)) continue;  // unlucky singular
    for (size_t i = 0; i < k; ++i) EXPECT_NEAR(r_copy[i], x[i], 1e-8);
  }
}

TEST(LinalgTest, OrthonormalBasisRankAndOrthogonality) {
  std::vector<double> r1 = {1, 0, 0};
  std::vector<double> r2 = {1, 1, 0};
  std::vector<double> r3 = {2, 1, 0};  // dependent on r1, r2
  std::vector<const double*> rows = {r1.data(), r2.data(), r3.data()};
  std::vector<double> basis;
  size_t rank = OrthonormalBasis(rows, 3, basis);
  EXPECT_EQ(rank, 2u);
  // Orthonormal: q0.q0 = 1, q0.q1 = 0.
  double q00 = basis[0] * basis[0] + basis[1] * basis[1] + basis[2] * basis[2];
  double q01 = basis[0] * basis[3] + basis[1] * basis[4] + basis[2] * basis[5];
  EXPECT_NEAR(q00, 1.0, 1e-12);
  EXPECT_NEAR(q01, 0.0, 1e-12);
}

TEST(LpProblemTest, BoxConstraintsAndViolation) {
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect({0.0, 0.0}, {1.0, 2.0}));
  EXPECT_EQ(p.num_constraints(), 4u);
  double inside[2] = {0.5, 1.0};
  double outside[2] = {1.5, 1.0};
  EXPECT_LE(p.MaxViolation(inside), 0.0);
  EXPECT_NEAR(p.MaxViolation(outside), 0.5, 1e-12);
}

class BoxLpTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BoxLpTest, MaximizeCoordinateOverBox) {
  const size_t d = GetParam();
  LpProblem p(d);
  HyperRect box = HyperRect::UnitCube(d);
  for (size_t i = 0; i < d; ++i) {
    box.lo(i) = 0.1 * static_cast<double>(i);
    box.hi(i) = 1.0 + 0.2 * static_cast<double>(i);
  }
  p.AddBoxConstraints(box);
  ActiveSetSolver solver;
  std::vector<double> start = box.Center();
  for (size_t i = 0; i < d; ++i) {
    std::vector<double> c(d, 0.0);
    c[i] = 1.0;
    LpResult up = solver.Maximize(p, c, start);
    ASSERT_EQ(up.status, LpStatus::kOptimal);
    EXPECT_NEAR(up.objective, box.hi(i), 1e-9);
    LpResult dn = solver.Minimize(p, c, start);
    ASSERT_EQ(dn.status, LpStatus::kOptimal);
    EXPECT_NEAR(dn.objective, box.lo(i), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, BoxLpTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 24));

TEST(ActiveSetSolverTest, DiagonalObjective) {
  // max x + y over the unit square -> corner (1,1).
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect::UnitCube(2));
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {1.0, 1.0}, {0.25, 0.75});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(ActiveSetSolverTest, TriangleVertex) {
  // max x subject to x + y <= 1, x,y >= 0 -> (1, 0).
  LpProblem p(2);
  p.AddConstraint({1.0, 1.0}, 1.0);
  p.AddConstraint({-1.0, 0.0}, 0.0);
  p.AddConstraint({0.0, -1.0}, 0.0);
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {1.0, 0.0}, {0.2, 0.2});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 0.0, 1e-9);
  EXPECT_TRUE(lp::AuditSolution(p, {1.0, 0.0}, r).ok());
}

TEST(ActiveSetSolverTest, StartOnBoundary) {
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect::UnitCube(2));
  ActiveSetSolver solver;
  // Start exactly at a vertex.
  LpResult r = solver.Maximize(p, {1.0, 0.5}, {0.0, 0.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[0], 1.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
}

TEST(ActiveSetSolverTest, RedundantConstraintsAndDegeneracy) {
  // Many redundant copies of the same faces; degenerate vertex at (1,1).
  LpProblem p(2);
  for (int k = 0; k < 5; ++k) {
    p.AddConstraint({1.0, 0.0}, 1.0);
    p.AddConstraint({0.0, 1.0}, 1.0);
    p.AddConstraint({1.0, 1.0}, 2.0);  // touches the same vertex
    p.AddConstraint({-1.0, 0.0}, 0.0);
    p.AddConstraint({0.0, -1.0}, 0.0);
  }
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {1.0, 2.0}, {0.5, 0.5});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 3.0, 1e-9);
}

TEST(ActiveSetSolverTest, UnboundedDetected) {
  LpProblem p(2);
  p.AddConstraint({-1.0, 0.0}, 0.0);  // x >= 0 only
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {1.0, 0.0}, {1.0, 0.0});
  EXPECT_EQ(r.status, LpStatus::kUnbounded);
  // The audit independently certifies a feasible improving ray.
  EXPECT_TRUE(lp::AuditSolution(p, {1.0, 0.0}, r).ok());
}

TEST(ActiveSetSolverTest, InfeasibleStartDetected) {
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect::UnitCube(2));
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {1.0, 0.0}, {5.0, 5.0});
  EXPECT_EQ(r.status, LpStatus::kInfeasibleStart);
  // The audit confirms the start really violates a constraint.
  EXPECT_TRUE(lp::AuditSolution(p, {1.0, 0.0}, r).ok());
}

TEST(ActiveSetSolverTest, ZeroObjective) {
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect::UnitCube(2));
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {0.0, 0.0}, {0.5, 0.5});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 0.0, 1e-12);
}

TEST(ActiveSetSolverTest, GeneralDirectionObjective) {
  // max 3x + 2y s.t. x + y <= 4, x <= 3, y <= 3, x,y >= 0.
  // Optimum at (3, 1) -> 11.
  LpProblem p(2);
  p.AddConstraint({1.0, 1.0}, 4.0);
  p.AddConstraint({1.0, 0.0}, 3.0);
  p.AddConstraint({0.0, 1.0}, 3.0);
  p.AddConstraint({-1.0, 0.0}, 0.0);
  p.AddConstraint({0.0, -1.0}, 0.0);
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(p, {3.0, 2.0}, {1.0, 1.0});
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 11.0, 1e-9);
  EXPECT_NEAR(r.x[0], 3.0, 1e-9);
  EXPECT_NEAR(r.x[1], 1.0, 1e-9);
  EXPECT_TRUE(lp::AuditSolution(p, {3.0, 2.0}, r).ok());
}

// Property: on random polytopes (random half-spaces through a ball around
// the start), the solver's optimum must (a) be feasible and (b) beat every
// feasible sample point.
TEST(ActiveSetSolverTest, RandomPolytopesOptimumDominatesSamples) {
  Rng rng(2024);
  for (int trial = 0; trial < 40; ++trial) {
    size_t d = 2 + rng.NextIndex(6);
    LpProblem p(d);
    p.AddBoxConstraints(HyperRect::UnitCube(d));
    std::vector<double> center(d, 0.5);
    size_t m = 5 + rng.NextIndex(30);
    for (size_t i = 0; i < m; ++i) {
      std::vector<double> a(d);
      for (auto& v : a) v = rng.NextGaussian();
      // Offset so the center stays feasible with slack.
      double b = 0.0;
      for (size_t j = 0; j < d; ++j) b += a[j] * center[j];
      b += rng.NextDouble(0.05, 0.5);
      p.AddConstraint(a, b);
    }
    std::vector<double> c(d);
    for (auto& v : c) v = rng.NextGaussian();

    ActiveSetSolver solver;
    LpResult r = solver.Maximize(p, c, center);
    ASSERT_EQ(r.status, LpStatus::kOptimal) << "trial " << trial;
    EXPECT_LE(p.MaxViolation(r.x.data()), 1e-7);
    Status audit = lp::AuditSolution(p, c, r);
    EXPECT_TRUE(audit.ok()) << "trial " << trial << ": " << audit.message();

    for (int s = 0; s < 200; ++s) {
      std::vector<double> x(d);
      for (auto& v : x) v = rng.NextDouble();
      if (p.MaxViolation(x.data()) > 0.0) continue;
      double obj = 0.0;
      for (size_t j = 0; j < d; ++j) obj += c[j] * x[j];
      EXPECT_LE(obj, r.objective + 1e-7) << "trial " << trial;
    }
  }
}

TEST(FeasibilityTest, FeasibleHintFastPath) {
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect::UnitCube(2));
  auto r = FindFeasiblePoint(p, {0.5, 0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<double>{0.5, 0.5}));
}

TEST(FeasibilityTest, FindsPointFromOutside) {
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect({0.4, 0.4}, {0.6, 0.6}));
  auto r = FindFeasiblePoint(p, {0.0, 0.0});
  ASSERT_TRUE(r.ok());
  EXPECT_LE(p.MaxViolation(r->data()), 1e-9);
}

TEST(FeasibilityTest, DetectsEmptyRegion) {
  LpProblem p(1);
  p.AddConstraint({1.0}, 0.0);    // x <= 0
  p.AddConstraint({-1.0}, -1.0);  // x >= 1
  auto r = FindFeasiblePoint(p, {0.5});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(FeasibilityTest, ThinSliceFound) {
  // Nearly-degenerate feasible strip.
  LpProblem p(2);
  p.AddBoxConstraints(HyperRect::UnitCube(2));
  p.AddConstraint({1.0, 0.0}, 0.500001);
  p.AddConstraint({-1.0, 0.0}, -0.5);  // 0.5 <= x <= 0.500001
  auto r = FindFeasiblePoint(p, {0.9, 0.9});
  ASSERT_TRUE(r.ok());
  EXPECT_LE(p.MaxViolation(r->data()), 1e-9);
}

TEST(FeasibilityTest, RandomRegionsMatchSampling) {
  // Phase-I verdicts must agree with dense sampling verdicts when sampling
  // finds a feasible point.
  Rng rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    size_t d = 2 + rng.NextIndex(4);
    LpProblem p(d);
    p.AddBoxConstraints(HyperRect::UnitCube(d));
    size_t m = 3 + rng.NextIndex(10);
    for (size_t i = 0; i < m; ++i) {
      std::vector<double> a(d);
      for (auto& v : a) v = rng.NextGaussian();
      p.AddConstraint(a, rng.NextDouble(-0.5, 1.5));
    }
    bool sample_feasible = false;
    for (int s = 0; s < 500 && !sample_feasible; ++s) {
      std::vector<double> x(d);
      for (auto& v : x) v = rng.NextDouble();
      sample_feasible = p.MaxViolation(x.data()) <= 0.0;
    }
    std::vector<double> hint(d, 0.5);
    auto r = FindFeasiblePoint(p, hint);
    if (sample_feasible) {
      ASSERT_TRUE(r.ok()) << "trial " << trial;
      EXPECT_LE(p.MaxViolation(r->data()), 1e-9);
    }
    if (r.ok()) {
      EXPECT_LE(p.MaxViolation(r->data()), 1e-9);
    }
  }
}

}  // namespace
}  // namespace nncell
