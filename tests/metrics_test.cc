// Unit tests of the metrics layer (common/metrics.h): striped counter and
// histogram aggregation under threads, gauge semantics, registry lookup
// discipline, snapshot determinism and the runtime enable switch the
// NNCELL_METRIC_* macros honor.

#include "common/metrics.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/kernels/kernels.h"
#include "common/metrics_names.h"

namespace nncell {
namespace metrics {
namespace {

// Every test leaves the global registry zeroed and disabled so tests stay
// order-independent within this binary.
class MetricsTest : public testing::Test {
 protected:
  void SetUp() override {
    Registry::SetEnabled(false);
    Registry::Global().ResetAll();
  }
  void TearDown() override {
    Registry::SetEnabled(false);
    Registry::Global().ResetAll();
  }
};

TEST_F(MetricsTest, CounterAddAndReset) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add(5);
  c.Increment();
  EXPECT_EQ(c.Value(), 6u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST_F(MetricsTest, CounterAggregatesAcrossThreads) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (int i = 0; i < kAddsPerThread; ++i) c.Add(1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kAddsPerThread);
}

TEST_F(MetricsTest, GaugeSetAndAdd) {
  Gauge g;
  g.Set(10);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-10);
  EXPECT_EQ(g.Value(), -3);  // gauges may go negative (unlike counters)
  g.Reset();
  EXPECT_EQ(g.Value(), 0);
}

TEST_F(MetricsTest, HistogramBucketsAndSum) {
  Histogram h;
  h.Record(1);     // bucket 0 (<= 1)
  h.Record(2);     // bucket 1 (<= 2)
  h.Record(3);     // bucket 2 (<= 4)
  h.Record(4096);  // last bounded bucket
  h.Record(4097);  // overflow bucket
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_EQ(h.Sum(), 1u + 2 + 3 + 4096 + 4097);
  std::vector<uint64_t> buckets = h.BucketCounts();
  ASSERT_EQ(buckets.size(), kHistogramBuckets);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[kHistogramBuckets - 2], 1u);
  EXPECT_EQ(buckets.back(), 1u);  // overflow
}

TEST_F(MetricsTest, HistogramAggregatesAcrossThreads) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr int kRecordsPerThread = 5000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kRecordsPerThread; ++i) {
        h.Record(static_cast<uint64_t>(t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kRecordsPerThread);
  // sum = kRecordsPerThread * (1 + 2 + ... + kThreads)
  EXPECT_EQ(h.Sum(), static_cast<uint64_t>(kRecordsPerThread) * kThreads *
                         (kThreads + 1) / 2);
}

TEST_F(MetricsTest, RegistryHandlesAreStableAndKindChecked) {
  Registry& r = Registry::Global();
  Counter* c1 = r.counter(kPoolLogicalReads);
  Counter* c2 = r.counter(kPoolLogicalReads);
  ASSERT_NE(c1, nullptr);
  EXPECT_EQ(c1, c2);  // handles live for the process lifetime
  EXPECT_NE(r.gauge(kPoolPinnedFrames), nullptr);
  EXPECT_NE(r.histogram(kQueryCandidatesPerQuery), nullptr);
}

TEST_F(MetricsTest, SnapshotCoversEveryRegisteredMetric) {
  Snapshot snap = Registry::Global().TakeSnapshot();
  ASSERT_EQ(snap.entries.size(), kNumMetricDefs);
  // Sorted by name, and every def from the single source of truth appears.
  for (size_t i = 1; i < snap.entries.size(); ++i) {
    EXPECT_LT(snap.entries[i - 1].name, snap.entries[i].name);
  }
  for (size_t i = 0; i < kNumMetricDefs; ++i) {
    const SnapshotEntry* e = snap.Find(kMetricDefs[i].name);
    ASSERT_NE(e, nullptr) << kMetricDefs[i].name;
    EXPECT_EQ(e->kind, kMetricDefs[i].kind);
  }
}

TEST_F(MetricsTest, SnapshotJsonIsDeterministic) {
  Registry& r = Registry::Global();
  Registry::SetEnabled(true);
  r.counter(kLpRuns)->Add(42);
  r.histogram(kQueryCandidatesPerQuery)->Record(17);
  Registry::SetEnabled(false);
  std::string a = r.SnapshotJson();
  std::string b = r.SnapshotJson();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"lp.solver.runs\":42"), std::string::npos) << a;
  // Pretty-printing changes line structure only, never keys or values.
  std::string pretty = r.SnapshotJson(2);
  EXPECT_NE(pretty.find("  \"lp.solver.runs\":42"), std::string::npos)
      << pretty;
}

TEST_F(MetricsTest, ResetAllZeroesEverything) {
  Registry& r = Registry::Global();
  Registry::SetEnabled(true);
  r.counter(kQueryCount)->Add(3);
  r.gauge(kPoolPinnedFrames)->Set(2);
  r.histogram(kQueryCandidatesPerQuery)->Record(9);
  Registry::SetEnabled(false);
  r.ResetAll();
  Snapshot snap = r.TakeSnapshot();
  for (const SnapshotEntry& e : snap.entries) {
    if (e.name == kKernelsDispatch) {
      // Process-constant: ResetAll restores it (zero would read as scalar).
      EXPECT_EQ(e.gauge, static_cast<int64_t>(kernels::ActiveLevel()));
      continue;
    }
    EXPECT_EQ(e.value, 0u) << e.name;
    EXPECT_EQ(e.gauge, 0) << e.name;
    EXPECT_EQ(e.sum, 0u) << e.name;
  }
}

#if NNCELL_METRICS
TEST_F(MetricsTest, MacrosHonorTheRuntimeSwitch) {
  Registry& r = Registry::Global();
  Counter* c = r.counter(kQueryCount);
  Gauge* g = r.gauge(kPoolPinnedFrames);
  Histogram* h = r.histogram(kQueryCandidatesPerQuery);

  Registry::SetEnabled(false);
  NNCELL_METRIC_COUNT(c, 7);
  NNCELL_METRIC_GAUGE_ADD(g, 7);
  NNCELL_METRIC_RECORD(h, 7);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_EQ(g->Value(), 0);
  EXPECT_EQ(h->Count(), 0u);

  Registry::SetEnabled(true);
  NNCELL_METRIC_COUNT(c, 7);
  NNCELL_METRIC_GAUGE_ADD(g, 7);
  NNCELL_METRIC_RECORD(h, 7);
  Registry::SetEnabled(false);
  EXPECT_EQ(c->Value(), 7u);
  EXPECT_EQ(g->Value(), 7);
  EXPECT_EQ(h->Count(), 1u);
  EXPECT_EQ(h->Sum(), 7u);
}
#endif  // NNCELL_METRICS

TEST_F(MetricsTest, ConcurrentRegistryWritesAggregateExactly) {
  Registry& r = Registry::Global();
  Registry::SetEnabled(true);
  constexpr int kThreads = 8;
  constexpr int kOps = 4000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r] {
      [[maybe_unused]] Counter* c = r.counter(kIndexNodeVisits);
      [[maybe_unused]] Histogram* h = r.histogram(kQueryCandidatesPerQuery);
      for (int i = 0; i < kOps; ++i) {
        NNCELL_METRIC_COUNT(c, 2);
        NNCELL_METRIC_RECORD(h, 1);
      }
    });
  }
  for (auto& w : workers) w.join();
  Registry::SetEnabled(false);
#if NNCELL_METRICS
  EXPECT_EQ(r.counter(kIndexNodeVisits)->Value(),
            static_cast<uint64_t>(kThreads) * kOps * 2);
  EXPECT_EQ(r.histogram(kQueryCandidatesPerQuery)->Count(),
            static_cast<uint64_t>(kThreads) * kOps);
#endif
}

}  // namespace
}  // namespace metrics
}  // namespace nncell
