#!/usr/bin/env bash
# End-to-end test of the nncell_cli tool: build an index from CSV,
# inspect it, persist + reload it, and run NN / k-NN queries.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

python3 - "$DIR" <<'PY'
import random, sys
random.seed(7)
d = sys.argv[1]
with open(d + "/pts.csv", "w") as f:
    f.write("# 200 random 3-d points\n")
    for _ in range(200):
        f.write(",".join("%.6f" % random.random() for _ in range(3)) + "\n")
with open(d + "/q.csv", "w") as f:
    for _ in range(5):
        f.write(",".join("%.6f" % random.random() for _ in range(3)) + "\n")
PY

"$CLI" build "$DIR/pts.csv" "$DIR/idx.nncell" --algorithm=sphere | grep -q "built"
"$CLI" stats "$DIR/idx.nncell" | grep -q "validation:         OK"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" | grep -c "nn id=" | grep -qx 5
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --k=3 | grep -qE "query 4: \(.*\) \(.*\) \(.*\)"
# parallel build must produce a byte-identical index; parallel query the
# same answers
"$CLI" build "$DIR/pts.csv" "$DIR/idx4.nncell" --algorithm=sphere --threads=4 | grep -q "built"
cmp "$DIR/idx.nncell" "$DIR/idx4.nncell"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" > "$DIR/serial.out"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --threads=4 > "$DIR/parallel.out"
cmp "$DIR/serial.out" "$DIR/parallel.out"
# observability: stats --json is well-formed and byte-stable across runs;
# --trace prints one JSON timeline per query
"$CLI" stats "$DIR/idx.nncell" --json > "$DIR/stats1.json"
"$CLI" stats "$DIR/idx.nncell" --json > "$DIR/stats2.json"
cmp "$DIR/stats1.json" "$DIR/stats2.json"
python3 - "$DIR/stats1.json" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
assert snap["index"]["validation"] == "OK", snap["index"]
m = snap["metrics"]
assert m["query.nn.count"] > 0 and m["query.nn.candidates"] > 0, m
assert m["index.tree.node_visits"] > 0 and m["lp.solver.runs"] > 0, m
assert m["query.nn.candidates_per_query"]["count"] == m["query.nn.count"], m
assert snap["approx"] == {"enabled": 0}, snap["approx"]
PY
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --trace > "$DIR/trace.out"
grep -c '^trace [0-9]*: {' "$DIR/trace.out" | grep -qx 5
grep -q '"name":"index_probe"' "$DIR/trace.out"
# approximate tier (docs/APPROXIMATE.md): with the knobs at their exact
# defaults the output stays byte-identical to a plain query; enabling a
# knob appends the certificate suffix to every line
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --epsilon=0 --max-visits=0 \
  > "$DIR/exact_flags.out"
cmp "$DIR/serial.out" "$DIR/exact_flags.out"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --epsilon=0.2 > "$DIR/approx.out"
grep -cE ' approx=[01] visits=[0-9]+ bound=[0-9]+\.[0-9]+$' "$DIR/approx.out" \
  | grep -qx 5
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --k=3 --max-visits=1 \
  | grep -cE ' approx=1 visits=1 bound=' | grep -qx 5
! "$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --epsilon=bogus 2>/dev/null
! "$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --epsilon=-0.5 2>/dev/null
! "$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --trace --epsilon=0.1 \
  2>"$DIR/approx_err.out"
grep -q -- "--trace cannot be combined with --epsilon/--max-visits" \
  "$DIR/approx_err.out"
"$CLI" stats "$DIR/idx.nncell" --json --epsilon=0.2 > "$DIR/stats_approx.json"
python3 - "$DIR/stats_approx.json" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
a = snap["approx"]
assert a["enabled"] == 1 and a["epsilon"] == 0.2, a
assert a["queries"] > 0 and a["leaf_visits"] > 0, a
assert a["approximate"] >= a["terminated_early"], a
PY
# durable mode: build a snapshot+WAL directory, answers must match the
# single-file index exactly; checkpoint and recover report cleanly
"$CLI" build "$DIR/pts.csv" "$DIR/dur" --algorithm=sphere --durable | grep -q "built durable"
test -f "$DIR/dur/snapshot.nncell"
test -f "$DIR/dur/wal.log"
"$CLI" query "$DIR/dur" "$DIR/q.csv" > "$DIR/durable.out"
cmp "$DIR/serial.out" "$DIR/durable.out"
"$CLI" stats "$DIR/dur" | grep -q "validation:         OK"
"$CLI" checkpoint "$DIR/dur" | grep -q "checkpointed"
"$CLI" recover "$DIR/dur" > "$DIR/recover.out"
grep -q "snapshot:        loaded" "$DIR/recover.out"
grep -q "tree validation: OK" "$DIR/recover.out"
# corruption is loud: one flipped bit in the snapshot fails recovery
python3 - "$DIR/dur/snapshot.nncell" <<'PY'
import sys
p = sys.argv[1]
data = bytearray(open(p, "rb").read())
data[len(data) // 2] ^= 0x10
open(p, "wb").write(bytes(data))
PY
! "$CLI" recover "$DIR/dur" 2>"$DIR/recover_err.out"
grep -q "recovery failed" "$DIR/recover_err.out"
! "$CLI" query "$DIR/dur" "$DIR/q.csv" 2>/dev/null
# sharded mode (docs/SHARDING.md): build a K-shard directory; queries must
# be bit-identical to the unsharded index over the same points
! "$CLI" build "$DIR/pts.csv" "$DIR/shardless" --shards=4 2>"$DIR/shard_err.out"
grep -q "requires --durable" "$DIR/shard_err.out"
"$CLI" build "$DIR/pts.csv" "$DIR/sharded" --algorithm=sphere --durable --shards=4 \
  | grep -q "built sharded index .*4 shards"
test -f "$DIR/sharded/shard.manifest"
test -f "$DIR/sharded/router.snap"
test -d "$DIR/sharded/shard-0"
"$CLI" query "$DIR/sharded" "$DIR/q.csv" > "$DIR/sharded.out"
cut -d' ' -f1-5 "$DIR/serial.out" > "$DIR/serial.ids"
cut -d' ' -f1-5 "$DIR/sharded.out" > "$DIR/sharded.ids"
cmp "$DIR/serial.ids" "$DIR/sharded.ids"
"$CLI" stats "$DIR/sharded" | grep -q "shards:             4 (epoch 0"
"$CLI" stats "$DIR/sharded" --json > "$DIR/shard_stats.json"
python3 - "$DIR/shard_stats.json" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
s = snap["shard"]
assert s["count"] == 4 and s["degraded"] == 0, s
assert len(s["cuts"]) == 3 and len(s["shards"]) == 4, s
assert sum(sh["live"] for sh in s["shards"]) == snap["index"]["points"], s
assert all(sh["healthy"] for sh in s["shards"]), s
assert snap["metrics"]["shard.query.probes"] > 0, snap["metrics"]
PY
# online rebalance installs the next routing epoch; answers are unchanged
"$CLI" rebalance "$DIR/sharded" | grep -q "epoch 0 -> 1"
"$CLI" query "$DIR/sharded" "$DIR/q.csv" | cut -d' ' -f1-5 > "$DIR/rebal.ids"
cmp "$DIR/serial.ids" "$DIR/rebal.ids"
"$CLI" checkpoint "$DIR/sharded" | grep -q "across 4 shards"
"$CLI" recover "$DIR/sharded" > "$DIR/shard_recover.out"
grep -q "shards:            4 (epoch 1)" "$DIR/shard_recover.out"
grep -q "tree validation:   OK" "$DIR/shard_recover.out"
# a future manifest version is refused with the version, not "corruption"
python3 - "$DIR/sharded/shard.manifest" <<'PY'
import struct, sys
p = sys.argv[1]
data = bytearray(open(p, "rb").read())
data[8:12] = struct.pack("<I", 99)  # version field; CRC left stale on purpose
open(p, "wb").write(bytes(data))
PY
! "$CLI" recover "$DIR/sharded" 2>"$DIR/shard_ver.out"
grep -q "unsupported shard manifest version 99 (this build reads version 1)" \
  "$DIR/shard_ver.out"
# error paths
! "$CLI" stats /nonexistent.idx 2>/dev/null
! "$CLI" frobnicate 2>/dev/null
echo "cli_test OK"
