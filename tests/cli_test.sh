#!/usr/bin/env bash
# End-to-end test of the nncell_cli tool: build an index from CSV,
# inspect it, persist + reload it, and run NN / k-NN queries.
set -euo pipefail
CLI="$1"
DIR="$(mktemp -d)"
trap 'rm -rf "$DIR"' EXIT

python3 - "$DIR" <<'PY'
import random, sys
random.seed(7)
d = sys.argv[1]
with open(d + "/pts.csv", "w") as f:
    f.write("# 200 random 3-d points\n")
    for _ in range(200):
        f.write(",".join("%.6f" % random.random() for _ in range(3)) + "\n")
with open(d + "/q.csv", "w") as f:
    for _ in range(5):
        f.write(",".join("%.6f" % random.random() for _ in range(3)) + "\n")
PY

"$CLI" build "$DIR/pts.csv" "$DIR/idx.nncell" --algorithm=sphere | grep -q "built"
"$CLI" stats "$DIR/idx.nncell" | grep -q "validation:         OK"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" | grep -c "nn id=" | grep -qx 5
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --k=3 | grep -qE "query 4: \(.*\) \(.*\) \(.*\)"
# parallel build must produce a byte-identical index; parallel query the
# same answers
"$CLI" build "$DIR/pts.csv" "$DIR/idx4.nncell" --algorithm=sphere --threads=4 | grep -q "built"
cmp "$DIR/idx.nncell" "$DIR/idx4.nncell"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" > "$DIR/serial.out"
"$CLI" query "$DIR/idx.nncell" "$DIR/q.csv" --threads=4 > "$DIR/parallel.out"
cmp "$DIR/serial.out" "$DIR/parallel.out"
# error paths
! "$CLI" stats /nonexistent.idx 2>/dev/null
! "$CLI" frobnicate 2>/dev/null
echo "cli_test OK"
