// Randomized property suites cutting across modules: LP optima versus
// sampling, tree structural invariants under mixed insert/delete
// workloads, and NN-cell correctness under adversarial point layouts.

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "data/generators.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "lp/active_set_solver.h"
#include "lp/audit.h"
#include "lp/linalg.h"
#include "lp/lp_problem.h"
#include "nncell/nncell_index.h"
#include "rstar/rstar_tree.h"
#include "rstar/validate.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "xtree/xtree.h"

namespace nncell {
namespace {

class LpVsSamplingTest : public ::testing::TestWithParam<size_t> {};

// For random NN-cell systems, the LP face value must dominate every
// sampled in-cell point and be attained up to tolerance by some direction.
TEST_P(LpVsSamplingTest, FaceDominatesSamples) {
  const size_t d = GetParam();
  Rng rng(9000 + d);
  for (int trial = 0; trial < 8; ++trial) {
    PointSet pts(d);
    size_t n = 10 + rng.NextIndex(40);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.NextDouble();
      pts.Add(p);
    }
    size_t owner = rng.NextIndex(n);
    std::vector<const double*> others;
    for (size_t i = 0; i < n; ++i) {
      if (i != owner) others.push_back(pts[i]);
    }
    CellApproximator approx(d, HyperRect::UnitCube(d));
    HyperRect mbr = approx.ApproximateMbr(pts[owner], others);

    double max_seen = -1.0;  // max coordinate 0 among in-cell samples
    for (int s = 0; s < 2000; ++s) {
      std::vector<double> x(d);
      for (auto& v : x) v = rng.NextDouble();
      if (!IsInCell(x.data(), pts[owner], others, d)) continue;
      max_seen = std::max(max_seen, x[0]);
      EXPECT_LE(x[0], mbr.hi(0) + 1e-7);
      EXPECT_GE(x[0], mbr.lo(0) - 1e-7);
    }
    if (max_seen >= 0.0) {
      EXPECT_LE(max_seen, mbr.hi(0) + 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LpVsSamplingTest,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

template <typename TreeT>
void MixedWorkloadInvariants(uint64_t seed) {
  Rng rng(seed);
  PageFile file(1024);
  BufferPool pool(&file, 4096);
  TreeOptions opts;
  opts.dim = 3;
  TreeT tree(&pool, opts);

  struct Live {
    std::vector<double> p;
    uint64_t id;
  };
  std::vector<Live> live;
  uint64_t next_id = 0;

  for (int step = 0; step < 3000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.65 || live.empty()) {
      std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble()};
      tree.Insert(HyperRect::FromPoint(p), next_id);
      live.push_back(Live{p, next_id});
      ++next_id;
    } else {
      size_t pick = rng.NextIndex(live.size());
      ASSERT_TRUE(
          tree.Delete(HyperRect::FromPoint(live[pick].p), live[pick].id));
      live.erase(live.begin() + pick);
    }
    if (step % 500 == 499) {
      ASSERT_EQ(tree.Validate(), "") << "step " << step;
      ASSERT_EQ(tree.size(), live.size());
    }
  }
  ASSERT_EQ(tree.Validate(), "");
  ASSERT_TRUE(rstar::ValidateTree(tree).ok());
  ASSERT_TRUE(pool.AuditPins().ok());

  // Final: every live point findable, sampled NN queries exact.
  for (size_t i = 0; i < live.size(); i += 13) {
    auto hits = tree.PointQuery(live[i].p.data());
    bool found = false;
    for (const auto& h : hits) found |= h.id == live[i].id;
    EXPECT_TRUE(found);
  }
  for (int t = 0; t < 20; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto knn = tree.KnnQuery(q.data(), 1);
    ASSERT_EQ(knn.size(), 1u);
    double best = 1e300;
    for (const auto& l : live) {
      best = std::min(best, L2Dist(l.p.data(), q.data(), 3));
    }
    EXPECT_NEAR(knn[0].dist, best, 1e-12);
  }
}

TEST(MixedWorkloadTest, RStarTreeSurvivesChurn) {
  MixedWorkloadInvariants<RStarTree>(111);
}

TEST(MixedWorkloadTest, XTreeSurvivesChurn) {
  MixedWorkloadInvariants<XTree>(222);
}

TEST(AdversarialLayoutTest, CollinearPoints) {
  // All points on a line: cells are slabs; LP systems are degenerate in
  // d-1 dimensions.
  const size_t d = 4;
  PointSet pts(d);
  for (int i = 0; i < 20; ++i) {
    double t = 0.05 + 0.9 * i / 19.0;
    pts.Add({t, t, t, t});
  }
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.NextDouble();
    auto r = index.Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2Dist(pts[i], q.data(), d));
    }
    EXPECT_NEAR(r->dist, best, 1e-9);
  }
}

TEST(AdversarialLayoutTest, CoplanarGridWithOutlier) {
  const size_t d = 3;
  PointSet pts(d);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      pts.Add({0.1 + 0.2 * i, 0.1 + 0.2 * j, 0.5});  // plane z=0.5
    }
  }
  pts.Add({0.5, 0.5, 0.01});  // outlier below the plane
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  // Queries near the outlier find it; queries above the plane never do.
  auto low = index.Query({0.5, 0.5, 0.05});
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->id, 25u);
  auto high = index.Query({0.33, 0.61, 0.9});
  ASSERT_TRUE(high.ok());
  EXPECT_NE(high->id, 25u);
}

TEST(AdversarialLayoutTest, PointsOnSpaceBoundary) {
  const size_t d = 3;
  PointSet pts(d);
  pts.Add({0.0, 0.0, 0.0});
  pts.Add({1.0, 1.0, 1.0});
  pts.Add({0.0, 1.0, 0.0});
  pts.Add({1.0, 0.0, 1.0});
  pts.Add({0.5, 0.5, 0.5});
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  Rng rng(77);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.NextDouble();
    auto r = index.Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2Dist(pts[i], q.data(), d));
    }
    EXPECT_NEAR(r->dist, best, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Randomized LP-solver audit suite. Every solve of a random bisector system
// is (a) independently verified by lp::AuditSolution (feasibility + KKT via
// NNLS) and (b) in d <= 3, cross-checked against a brute-force vertex
// enumerator: a bounded LP attains its optimum at a vertex, and with few
// constraints every d-subset can be intersected exhaustively.

// Maximum of c . x over all feasible vertices of the (bounded) problem,
// found by solving every d-subset of constraint rows. Returns -inf when no
// feasible vertex exists.
double BruteForceVertexOptimum(const LpProblem& problem,
                               const std::vector<double>& c) {
  const size_t d = problem.dim();
  const size_t m = problem.num_constraints();
  double best = -std::numeric_limits<double>::infinity();

  std::vector<size_t> subset(d, 0);
  // Odometer over strictly increasing index d-tuples.
  for (size_t i = 0; i < d; ++i) subset[i] = i;
  if (m < d) return best;
  while (true) {
    std::vector<double> mat(d * d), rhs(d);
    for (size_t i = 0; i < d; ++i) {
      const double* row = problem.row(subset[i]);
      std::copy(row, row + d, mat.begin() + i * d);
      rhs[i] = problem.rhs(subset[i]);
    }
    if (SolveLinearSystem(mat, rhs, d)) {
      // rhs now holds the intersection point of the d hyperplanes.
      if (problem.MaxViolation(rhs.data()) <= 1e-8) {
        best = std::max(best, Dot(c.data(), rhs.data(), d));
      }
    }
    // Advance the odometer.
    size_t pos = d;
    while (pos > 0) {
      --pos;
      if (subset[pos] + (d - pos) < m) break;
      if (pos == 0) return best;
    }
    ++subset[pos];
    for (size_t i = pos + 1; i < d; ++i) subset[i] = subset[i - 1] + 1;
  }
}

class LpAuditPropertyTest : public ::testing::TestWithParam<size_t> {};

TEST_P(LpAuditPropertyTest, RandomBisectorSystemsPassAuditAndMatchVertices) {
  const size_t d = GetParam();
  Rng rng(3100 + d);
  ActiveSetSolver solver;
  for (int trial = 0; trial < 30; ++trial) {
    // A small random NN-cell system: the owner's cell within the unit cube.
    size_t n = 2 + rng.NextIndex(6);
    std::vector<std::vector<double>> storage(n + 1, std::vector<double>(d));
    for (auto& p : storage) {
      for (auto& v : p) v = rng.NextDouble();
    }
    const double* owner = storage[0].data();
    std::vector<const double*> candidates;
    for (size_t i = 1; i < storage.size(); ++i) {
      candidates.push_back(storage[i].data());
    }
    LpProblem problem =
        BuildCellProblem(owner, candidates, d, HyperRect::UnitCube(d));

    // Random objective direction (components in [-1, 1], not all ~0).
    std::vector<double> c(d);
    double norm2 = 0.0;
    for (auto& v : c) {
      v = rng.NextDouble(-1.0, 1.0);
      norm2 += v * v;
    }
    if (norm2 < 1e-4) c[0] = 1.0;

    std::vector<double> start(owner, owner + d);
    LpResult up = solver.Maximize(problem, c, start);
    LpResult dn = solver.Minimize(problem, c, start);

    // Independent audit: feasibility, objective consistency, KKT.
    ASSERT_TRUE(
        lp::AuditSolution(problem, c, up, lp::LpSense::kMaximize).ok())
        << "trial " << trial << ": "
        << lp::AuditSolution(problem, c, up, lp::LpSense::kMaximize)
               .message();
    ASSERT_TRUE(
        lp::AuditSolution(problem, c, dn, lp::LpSense::kMinimize).ok())
        << "trial " << trial << ": "
        << lp::AuditSolution(problem, c, dn, lp::LpSense::kMinimize)
               .message();

    // Exhaustive cross-check (d <= 3 keeps the subset count tractable).
    ASSERT_EQ(up.status, LpStatus::kOptimal);
    ASSERT_EQ(dn.status, LpStatus::kOptimal);
    double vertex_max = BruteForceVertexOptimum(problem, c);
    std::vector<double> neg_c(d);
    for (size_t i = 0; i < d; ++i) neg_c[i] = -c[i];
    double vertex_min = -BruteForceVertexOptimum(problem, neg_c);
    ASSERT_TRUE(std::isfinite(vertex_max));
    EXPECT_NEAR(up.objective, vertex_max, 1e-7) << "trial " << trial;
    EXPECT_NEAR(dn.objective, vertex_min, 1e-7) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LpAuditPropertyTest, ::testing::Values(2, 3));

TEST(LpAuditTest, RejectsCorruptedOptimum) {
  // Take a genuinely optimal solve, then perturb it: the audit must flag
  // an interior point posing as an optimum (KKT failure) and an infeasible
  // point (primal violation).
  const size_t d = 2;
  std::vector<double> owner = {0.3, 0.4};
  std::vector<double> other = {0.8, 0.7};
  std::vector<const double*> candidates = {other.data()};
  LpProblem problem = BuildCellProblem(owner.data(), candidates, d,
                                       HyperRect::UnitCube(d));
  std::vector<double> c = {1.0, 0.0};
  ActiveSetSolver solver;
  LpResult r = solver.Maximize(problem, c, owner);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  ASSERT_TRUE(lp::AuditSolution(problem, c, r, lp::LpSense::kMaximize).ok());

  // Interior point claiming optimality: stationarity cannot hold.
  LpResult interior = r;
  interior.x = owner;
  interior.objective = owner[0];
  EXPECT_FALSE(
      lp::AuditSolution(problem, c, interior, lp::LpSense::kMaximize).ok());

  // Point outside the feasible region: primal audit must fire.
  LpResult outside = r;
  outside.x = {1.5, 0.5};
  outside.objective = 1.5;
  EXPECT_FALSE(
      lp::AuditSolution(problem, c, outside, lp::LpSense::kMaximize).ok());

  // Objective not matching c . x.
  LpResult lied = r;
  lied.objective += 0.25;
  EXPECT_FALSE(
      lp::AuditSolution(problem, c, lied, lp::LpSense::kMaximize).ok());
}

TEST(LpAuditTest, NnlsRecoversConicCombination) {
  // g built as a known non-negative combination of columns: NNLS must
  // reproduce it with ~zero residual. A column pointing away must get a
  // zero multiplier.
  const size_t d = 3;
  std::vector<double> a1 = {1.0, 0.0, 0.0};
  std::vector<double> a2 = {0.0, 1.0, 0.0};
  std::vector<double> a3 = {-1.0, -1.0, -1.0};  // never needed
  std::vector<const double*> cols = {a1.data(), a2.data(), a3.data()};
  std::vector<double> g = {2.0, 3.0, 0.0};  // = 2*a1 + 3*a2
  std::vector<double> lambda;
  double res = lp::NonNegativeLeastSquares(cols, d, g, &lambda);
  EXPECT_LT(res, 1e-9);
  ASSERT_EQ(lambda.size(), 3u);
  EXPECT_NEAR(lambda[0], 2.0, 1e-9);
  EXPECT_NEAR(lambda[1], 3.0, 1e-9);
  EXPECT_NEAR(lambda[2], 0.0, 1e-9);
  for (double v : lambda) EXPECT_GE(v, 0.0);
}

TEST(AdversarialLayoutTest, NearDuplicateClusters) {
  // Pairs of points separated by 1e-7: razor-thin cells.
  const size_t d = 2;
  Rng rng(88);
  PointSet pts(d);
  for (int i = 0; i < 15; ++i) {
    double x = rng.NextDouble(0.1, 0.9), y = rng.NextDouble(0.1, 0.9);
    pts.Add({x, y});
    pts.Add({x + 1e-7, y});
  }
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  for (int t = 0; t < 100; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble()};
    auto r = index.Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2Dist(pts[i], q.data(), d));
    }
    EXPECT_NEAR(r->dist, best, 1e-9);
  }
}

}  // namespace
}  // namespace nncell
