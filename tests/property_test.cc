// Randomized property suites cutting across modules: LP optima versus
// sampling, tree structural invariants under mixed insert/delete
// workloads, and NN-cell correctness under adversarial point layouts.

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "data/generators.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "nncell/nncell_index.h"
#include "rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "xtree/xtree.h"

namespace nncell {
namespace {

class LpVsSamplingTest : public ::testing::TestWithParam<size_t> {};

// For random NN-cell systems, the LP face value must dominate every
// sampled in-cell point and be attained up to tolerance by some direction.
TEST_P(LpVsSamplingTest, FaceDominatesSamples) {
  const size_t d = GetParam();
  Rng rng(9000 + d);
  for (int trial = 0; trial < 8; ++trial) {
    PointSet pts(d);
    size_t n = 10 + rng.NextIndex(40);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.NextDouble();
      pts.Add(p);
    }
    size_t owner = rng.NextIndex(n);
    std::vector<const double*> others;
    for (size_t i = 0; i < n; ++i) {
      if (i != owner) others.push_back(pts[i]);
    }
    CellApproximator approx(d, HyperRect::UnitCube(d));
    HyperRect mbr = approx.ApproximateMbr(pts[owner], others);

    double max_seen = -1.0;  // max coordinate 0 among in-cell samples
    for (int s = 0; s < 2000; ++s) {
      std::vector<double> x(d);
      for (auto& v : x) v = rng.NextDouble();
      if (!IsInCell(x.data(), pts[owner], others, d)) continue;
      max_seen = std::max(max_seen, x[0]);
      EXPECT_LE(x[0], mbr.hi(0) + 1e-7);
      EXPECT_GE(x[0], mbr.lo(0) - 1e-7);
    }
    if (max_seen >= 0.0) {
      EXPECT_LE(max_seen, mbr.hi(0) + 1e-7);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, LpVsSamplingTest,
                         ::testing::Values(2, 3, 4, 6, 8, 12));

template <typename TreeT>
void MixedWorkloadInvariants(uint64_t seed) {
  Rng rng(seed);
  PageFile file(1024);
  BufferPool pool(&file, 4096);
  TreeOptions opts;
  opts.dim = 3;
  TreeT tree(&pool, opts);

  struct Live {
    std::vector<double> p;
    uint64_t id;
  };
  std::vector<Live> live;
  uint64_t next_id = 0;

  for (int step = 0; step < 3000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.65 || live.empty()) {
      std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble()};
      tree.Insert(HyperRect::FromPoint(p), next_id);
      live.push_back(Live{p, next_id});
      ++next_id;
    } else {
      size_t pick = rng.NextIndex(live.size());
      ASSERT_TRUE(
          tree.Delete(HyperRect::FromPoint(live[pick].p), live[pick].id));
      live.erase(live.begin() + pick);
    }
    if (step % 500 == 499) {
      ASSERT_EQ(tree.Validate(), "") << "step " << step;
      ASSERT_EQ(tree.size(), live.size());
    }
  }
  ASSERT_EQ(tree.Validate(), "");

  // Final: every live point findable, sampled NN queries exact.
  for (size_t i = 0; i < live.size(); i += 13) {
    auto hits = tree.PointQuery(live[i].p.data());
    bool found = false;
    for (const auto& h : hits) found |= h.id == live[i].id;
    EXPECT_TRUE(found);
  }
  for (int t = 0; t < 20; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto knn = tree.KnnQuery(q.data(), 1);
    ASSERT_EQ(knn.size(), 1u);
    double best = 1e300;
    for (const auto& l : live) {
      best = std::min(best, L2Dist(l.p.data(), q.data(), 3));
    }
    EXPECT_NEAR(knn[0].dist, best, 1e-12);
  }
}

TEST(MixedWorkloadTest, RStarTreeSurvivesChurn) {
  MixedWorkloadInvariants<RStarTree>(111);
}

TEST(MixedWorkloadTest, XTreeSurvivesChurn) {
  MixedWorkloadInvariants<XTree>(222);
}

TEST(AdversarialLayoutTest, CollinearPoints) {
  // All points on a line: cells are slabs; LP systems are degenerate in
  // d-1 dimensions.
  const size_t d = 4;
  PointSet pts(d);
  for (int i = 0; i < 20; ++i) {
    double t = 0.05 + 0.9 * i / 19.0;
    pts.Add({t, t, t, t});
  }
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.NextDouble();
    auto r = index.Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2Dist(pts[i], q.data(), d));
    }
    EXPECT_NEAR(r->dist, best, 1e-9);
  }
}

TEST(AdversarialLayoutTest, CoplanarGridWithOutlier) {
  const size_t d = 3;
  PointSet pts(d);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      pts.Add({0.1 + 0.2 * i, 0.1 + 0.2 * j, 0.5});  // plane z=0.5
    }
  }
  pts.Add({0.5, 0.5, 0.01});  // outlier below the plane
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  // Queries near the outlier find it; queries above the plane never do.
  auto low = index.Query({0.5, 0.5, 0.05});
  ASSERT_TRUE(low.ok());
  EXPECT_EQ(low->id, 25u);
  auto high = index.Query({0.33, 0.61, 0.9});
  ASSERT_TRUE(high.ok());
  EXPECT_NE(high->id, 25u);
}

TEST(AdversarialLayoutTest, PointsOnSpaceBoundary) {
  const size_t d = 3;
  PointSet pts(d);
  pts.Add({0.0, 0.0, 0.0});
  pts.Add({1.0, 1.0, 1.0});
  pts.Add({0.0, 1.0, 0.0});
  pts.Add({1.0, 0.0, 1.0});
  pts.Add({0.5, 0.5, 0.5});
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  Rng rng(77);
  for (int t = 0; t < 200; ++t) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.NextDouble();
    auto r = index.Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2Dist(pts[i], q.data(), d));
    }
    EXPECT_NEAR(r->dist, best, 1e-9);
  }
}

TEST(AdversarialLayoutTest, NearDuplicateClusters) {
  // Pairs of points separated by 1e-7: razor-thin cells.
  const size_t d = 2;
  Rng rng(88);
  PointSet pts(d);
  for (int i = 0; i < 15; ++i) {
    double x = rng.NextDouble(0.1, 0.9), y = rng.NextDouble(0.1, 0.9);
    pts.Add({x, y});
    pts.Add({x + 1e-7, y});
  }
  PageFile file(2048);
  BufferPool pool(&file, 1024);
  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kCorrect;
  NNCellIndex index(&pool, d, opts);
  ASSERT_TRUE(index.BulkBuild(pts).ok());
  for (int t = 0; t < 100; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble()};
    auto r = index.Query(q);
    ASSERT_TRUE(r.ok());
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2Dist(pts[i], q.data(), d));
    }
    EXPECT_NEAR(r->dist, best, 1e-9);
  }
}

}  // namespace
}  // namespace nncell
