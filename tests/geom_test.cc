#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/point_set.h"
#include "common/rng.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "geom/voronoi2d.h"

namespace nncell {
namespace {

std::vector<const double*> AllOthers(const PointSet& pts, size_t owner) {
  std::vector<const double*> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (i != owner) out.push_back(pts[i]);
  }
  return out;
}

TEST(BisectorTest, HalfSpaceSeparatesCorrectly) {
  // Owner at origin, other at (1,0): bisector is x = 0.5.
  double owner[2] = {0.0, 0.0};
  double other[2] = {1.0, 0.0};
  LpProblem p(2);
  AddBisectorConstraint(owner, other, 2, &p);
  double near_owner[2] = {0.2, 0.7};
  double near_other[2] = {0.8, 0.7};
  double midpoint[2] = {0.5, 0.3};
  EXPECT_LE(p.MaxViolation(near_owner), 0.0);
  EXPECT_GT(p.MaxViolation(near_other), 0.0);
  EXPECT_NEAR(p.MaxViolation(midpoint), 0.0, 1e-12);
}

TEST(BisectorTest, RandomPointsSatisfyIffCloser) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    size_t d = 2 + rng.NextIndex(10);
    std::vector<double> owner(d), other(d), x(d);
    for (auto& v : owner) v = rng.NextDouble();
    for (auto& v : other) v = rng.NextDouble();
    LpProblem p(d);
    AddBisectorConstraint(owner.data(), other.data(), d, &p);
    for (int s = 0; s < 50; ++s) {
      for (auto& v : x) v = rng.NextDouble();
      bool closer = L2DistSq(x.data(), owner.data(), d) <=
                    L2DistSq(x.data(), other.data(), d);
      bool satisfied = p.MaxViolation(x.data()) <= 1e-12;
      EXPECT_EQ(closer, satisfied);
    }
  }
}

TEST(BisectorTest, IsInCellMatchesDistanceTest) {
  Rng rng(6);
  PointSet pts(3);
  for (int i = 0; i < 20; ++i)
    pts.Add({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  auto others = AllOthers(pts, 0);
  for (int s = 0; s < 100; ++s) {
    std::vector<double> x = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    // Brute force NN check.
    double d_own = L2DistSq(x.data(), pts[0], 3);
    bool is_nn = true;
    for (size_t j = 1; j < pts.size(); ++j) {
      if (L2DistSq(x.data(), pts[j], 3) < d_own) is_nn = false;
    }
    EXPECT_EQ(IsInCell(x.data(), pts[0], others, 3), is_nn);
  }
}

TEST(Voronoi2DTest, SinglePointCellIsSpace) {
  double owner[2] = {0.3, 0.4};
  Polygon2D cell = ComputeNNCell2D(owner, {}, HyperRect::UnitCube(2));
  EXPECT_NEAR(cell.Area(), 1.0, 1e-12);
  EXPECT_EQ(cell.Mbr(), HyperRect::UnitCube(2));
}

TEST(Voronoi2DTest, TwoPointsSplitSpace) {
  double a[2] = {0.25, 0.5};
  double b[2] = {0.75, 0.5};
  Polygon2D cell_a = ComputeNNCell2D(a, {b}, HyperRect::UnitCube(2));
  Polygon2D cell_b = ComputeNNCell2D(b, {a}, HyperRect::UnitCube(2));
  EXPECT_NEAR(cell_a.Area(), 0.5, 1e-12);
  EXPECT_NEAR(cell_b.Area(), 0.5, 1e-12);
  EXPECT_EQ(cell_a.Mbr(), HyperRect({0.0, 0.0}, {0.5, 1.0}));
}

TEST(Voronoi2DTest, CellAreasSumToSpace) {
  // Definition 2 consequence: NN-cells tile the data space.
  Rng rng(9);
  PointSet pts(2);
  for (int i = 0; i < 30; ++i) pts.Add({rng.NextDouble(), rng.NextDouble()});
  double total = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    total += ComputeNNCell2D(pts[i], AllOthers(pts, i),
                             HyperRect::UnitCube(2))
                 .Area();
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Voronoi2DTest, PolygonContainsOwner) {
  Rng rng(10);
  PointSet pts(2);
  for (int i = 0; i < 25; ++i) pts.Add({rng.NextDouble(), rng.NextDouble()});
  for (size_t i = 0; i < pts.size(); ++i) {
    Polygon2D cell =
        ComputeNNCell2D(pts[i], AllOthers(pts, i), HyperRect::UnitCube(2));
    ASSERT_FALSE(cell.IsEmpty());
    EXPECT_TRUE(cell.Contains(pts[i][0], pts[i][1]));
  }
}

TEST(Voronoi2DTest, ClipRemovesHalf) {
  Polygon2D square;
  square.vertices = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Polygon2D half = ClipByHalfPlane(square, {1.0, 0.0}, 0.5);  // x <= 0.5
  EXPECT_NEAR(half.Area(), 0.5, 1e-12);
  Polygon2D none = ClipByHalfPlane(square, {1.0, 0.0}, -1.0);
  EXPECT_TRUE(none.IsEmpty());
}

TEST(OrderMVoronoiTest, OrderOneMatchesNNCell) {
  Rng rng(14);
  PointSet pts(2);
  for (int i = 0; i < 12; ++i) pts.Add({rng.NextDouble(), rng.NextDouble()});
  std::vector<const double*> sites;
  for (size_t i = 0; i < pts.size(); ++i) sites.push_back(pts[i]);
  for (size_t i = 0; i < pts.size(); ++i) {
    Polygon2D order1 =
        ComputeOrderMCell2D(sites, {i}, HyperRect::UnitCube(2));
    Polygon2D nn = ComputeNNCell2D(pts[i], AllOthers(pts, i),
                                   HyperRect::UnitCube(2));
    EXPECT_NEAR(order1.Area(), nn.Area(), 1e-9);
  }
}

TEST(OrderMVoronoiTest, Order2CellsTileSpace) {
  // Definition 1: the non-empty order-2 cells partition the data space.
  Rng rng(15);
  PointSet pts(2);
  for (int i = 0; i < 7; ++i) pts.Add({rng.NextDouble(), rng.NextDouble()});
  std::vector<const double*> sites;
  for (size_t i = 0; i < pts.size(); ++i) sites.push_back(pts[i]);
  double total = 0.0;
  size_t nonempty = 0;
  for (size_t i = 0; i < pts.size(); ++i) {
    for (size_t j = i + 1; j < pts.size(); ++j) {
      Polygon2D cell =
          ComputeOrderMCell2D(sites, {i, j}, HyperRect::UnitCube(2));
      if (!cell.IsEmpty()) {
        total += cell.Area();
        ++nonempty;
      }
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_GT(nonempty, pts.size());  // more order-2 than order-1 cells
}

TEST(OrderMVoronoiTest, MembershipMatchesKnnSemantics) {
  // x in the order-m cell of A <=> A is exactly the set of m nearest
  // sites of x.
  Rng rng(16);
  PointSet pts(2);
  for (int i = 0; i < 6; ++i) pts.Add({rng.NextDouble(), rng.NextDouble()});
  std::vector<const double*> sites;
  for (size_t i = 0; i < pts.size(); ++i) sites.push_back(pts[i]);

  for (int trial = 0; trial < 200; ++trial) {
    double x = rng.NextDouble(), y = rng.NextDouble();
    double q[2] = {x, y};
    // Find the 2 nearest sites by brute force.
    std::vector<std::pair<double, size_t>> order;
    for (size_t i = 0; i < sites.size(); ++i) {
      order.emplace_back(L2DistSq(sites[i], q, 2), i);
    }
    std::sort(order.begin(), order.end());
    std::vector<size_t> top2 = {order[0].second, order[1].second};
    Polygon2D cell =
        ComputeOrderMCell2D(sites, top2, HyperRect::UnitCube(2));
    EXPECT_TRUE(cell.Contains(x, y)) << "trial " << trial;
  }
}

TEST(OrderMVoronoiTest, FullSubsetIsWholeSpace) {
  PointSet pts(2);
  pts.Add({0.2, 0.2});
  pts.Add({0.8, 0.8});
  std::vector<const double*> sites = {pts[0], pts[1]};
  Polygon2D cell =
      ComputeOrderMCell2D(sites, {0, 1}, HyperRect::UnitCube(2));
  EXPECT_NEAR(cell.Area(), 1.0, 1e-12);
}

// The central oracle test: in 2-D the LP-based MBR approximation (Correct
// algorithm) must equal the MBR of the exactly clipped Voronoi polygon.
TEST(CellApproximatorTest, MatchesExact2DVoronoiMbr) {
  Rng rng(123);
  for (int trial = 0; trial < 15; ++trial) {
    PointSet pts(2);
    size_t n = 5 + rng.NextIndex(40);
    for (size_t i = 0; i < n; ++i)
      pts.Add({rng.NextDouble(), rng.NextDouble()});
    CellApproximator approx(2, HyperRect::UnitCube(2));
    for (size_t i = 0; i < pts.size(); ++i) {
      auto others = AllOthers(pts, i);
      HyperRect lp_mbr = approx.ApproximateMbr(pts[i], others);
      HyperRect exact =
          ComputeNNCell2D(pts[i], others, HyperRect::UnitCube(2)).Mbr();
      for (size_t k = 0; k < 2; ++k) {
        EXPECT_NEAR(lp_mbr.lo(k), exact.lo(k), 1e-7)
            << "trial " << trial << " cell " << i;
        EXPECT_NEAR(lp_mbr.hi(k), exact.hi(k), 1e-7)
            << "trial " << trial << " cell " << i;
      }
    }
  }
}

// Lemma 1: optimized (subset-constraint) approximations only grow.
TEST(CellApproximatorTest, SubsetConstraintsGiveLargerMbr) {
  Rng rng(321);
  for (int trial = 0; trial < 10; ++trial) {
    size_t d = 2 + rng.NextIndex(7);
    PointSet pts(d);
    size_t n = 20 + rng.NextIndex(30);
    for (size_t i = 0; i < n; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.NextDouble();
      pts.Add(p);
    }
    CellApproximator approx(d, HyperRect::UnitCube(d));
    size_t owner = rng.NextIndex(n);
    auto all = AllOthers(pts, owner);
    HyperRect correct = approx.ApproximateMbr(pts[owner], all);
    // Random subset of the constraints.
    std::vector<const double*> subset;
    for (const double* p : all) {
      if (rng.NextDouble() < 0.4) subset.push_back(p);
    }
    HyperRect opt = approx.ApproximateMbr(pts[owner], subset);
    for (size_t k = 0; k < d; ++k) {
      EXPECT_LE(opt.lo(k), correct.lo(k) + 1e-7);
      EXPECT_GE(opt.hi(k), correct.hi(k) - 1e-7);
    }
  }
}

// The MBR must contain the owner and every sampled in-cell point.
TEST(CellApproximatorTest, MbrCoversCellSamples) {
  Rng rng(555);
  for (size_t d : {2u, 4u, 8u}) {
    PointSet pts(d);
    for (int i = 0; i < 40; ++i) {
      std::vector<double> p(d);
      for (auto& v : p) v = rng.NextDouble();
      pts.Add(p);
    }
    CellApproximator approx(d, HyperRect::UnitCube(d));
    for (size_t owner = 0; owner < 5; ++owner) {
      auto others = AllOthers(pts, owner);
      HyperRect mbr = approx.ApproximateMbr(pts[owner], others);
      EXPECT_TRUE(mbr.ContainsPoint(pts[owner]));
      for (int s = 0; s < 300; ++s) {
        std::vector<double> x(d);
        for (auto& v : x) v = rng.NextDouble();
        if (IsInCell(x.data(), pts[owner], others, d)) {
          for (size_t k = 0; k < d; ++k) {
            EXPECT_GE(x[k], mbr.lo(k) - 1e-7);
            EXPECT_LE(x[k], mbr.hi(k) + 1e-7);
          }
        }
      }
    }
  }
}

TEST(CellApproximatorTest, RegularGridGivesExactCells) {
  // Fig. 2c/d: on a regular multidimensional grid, MBR approximations equal
  // the NN-cells (axis-aligned boxes) and do not overlap.
  const size_t d = 2;
  PointSet pts(d);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      pts.Add({(i + 0.5) / 4.0, (j + 0.5) / 4.0});
    }
  }
  CellApproximator approx(d, HyperRect::UnitCube(d));
  double total_volume = 0.0;
  for (size_t i = 0; i < pts.size(); ++i) {
    HyperRect mbr = approx.ApproximateMbr(pts[i], AllOthers(pts, i));
    EXPECT_NEAR(mbr.Volume(), 1.0 / 16.0, 1e-9);
    total_volume += mbr.Volume();
  }
  EXPECT_NEAR(total_volume, 1.0, 1e-8);  // tiling, no overlap
}

TEST(CellApproximatorTest, SparseDataCellsNearSpace) {
  // Fig. 2e/f worst case: two far-apart points in high-d; each MBR covers
  // nearly the whole space along most dimensions.
  const size_t d = 8;
  std::vector<double> a(d, 0.3), b(d, 0.7);
  PointSet pts(d);
  pts.Add(a);
  pts.Add(b);
  CellApproximator approx(d, HyperRect::UnitCube(d));
  HyperRect mbr = approx.ApproximateMbr(pts[0], {pts[1]});
  // The bisector cuts the diagonal; the MBR still reaches the space bounds
  // in every dimension on the owner's side.
  for (size_t k = 0; k < d; ++k) {
    EXPECT_NEAR(mbr.lo(k), 0.0, 1e-9);
    EXPECT_GT(mbr.hi(k), 0.9);
  }
}

TEST(CellApproximatorTest, ClippedMbrRespectsClipAndCell) {
  Rng rng(888);
  const size_t d = 3;
  PointSet pts(d);
  for (int i = 0; i < 25; ++i) {
    pts.Add({rng.NextDouble(), rng.NextDouble(), rng.NextDouble()});
  }
  CellApproximator approx(d, HyperRect::UnitCube(d));
  auto others = AllOthers(pts, 0);
  HyperRect full = approx.ApproximateMbr(pts[0], others);
  // Clip to the lower half in dim 0.
  HyperRect clip = full;
  clip.hi(0) = 0.5 * (full.lo(0) + full.hi(0));
  HyperRect piece = approx.ApproximateClippedMbr(pts[0], others, clip);
  if (!piece.IsEmpty()) {
    for (size_t k = 0; k < d; ++k) {
      EXPECT_GE(piece.lo(k), clip.lo(k) - 1e-7);
      EXPECT_LE(piece.hi(k), clip.hi(k) + 1e-7);
    }
    // Every sampled cell point inside the clip must be covered.
    for (int s = 0; s < 500; ++s) {
      std::vector<double> x(d);
      for (auto& v : x) v = rng.NextDouble();
      if (clip.ContainsPoint(x) && IsInCell(x.data(), pts[0], others, d)) {
        for (size_t k = 0; k < d; ++k) {
          EXPECT_GE(x[k], piece.lo(k) - 1e-7);
          EXPECT_LE(x[k], piece.hi(k) + 1e-7);
        }
      }
    }
  }
}

TEST(CellApproximatorTest, EmptyClipDetected) {
  const size_t d = 2;
  PointSet pts(d);
  pts.Add({0.1, 0.1});
  pts.Add({0.9, 0.9});
  CellApproximator approx(d, HyperRect::UnitCube(d));
  // The cell of point 0 is the lower-left half; clip to a box fully on the
  // other side of the bisector.
  HyperRect clip({0.9, 0.9}, {1.0, 1.0});
  HyperRect piece = approx.ApproximateClippedMbr(pts[0], {pts[1]}, clip);
  EXPECT_TRUE(piece.IsEmpty());
}

TEST(SelectorTest, SphereRadiusShrinksWithN) {
  EXPECT_GT(DefaultSphereRadius(10, 4), DefaultSphereRadius(1000, 4));
  EXPECT_GT(DefaultSphereRadius(1000, 16), DefaultSphereRadius(1000, 4));
}

TEST(SelectorTest, SphereCandidatesAreWithinRadius) {
  Rng rng(31);
  PointSet pts(4);
  for (int i = 0; i < 100; ++i) {
    std::vector<double> p(4);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  double radius = 0.4;
  auto cands = SelectSphereCandidates(pts, 0, radius);
  for (size_t j : cands) {
    EXPECT_NE(j, 0u);
    EXPECT_LE(L2Dist(pts[j], pts[0], 4), radius + 1e-12);
  }
  // Complement check.
  size_t inside = 0;
  for (size_t j = 1; j < pts.size(); ++j) {
    if (L2Dist(pts[j], pts[0], 4) <= radius) ++inside;
  }
  EXPECT_EQ(cands.size(), inside);
}

TEST(SelectorTest, NNDirectionBudgetAndContents) {
  Rng rng(32);
  const size_t d = 6;
  PointSet pts(d);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> p(d);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  auto cands = SelectNNDirectionCandidates(pts, 0);
  EXPECT_LE(cands.size(), 4 * d);
  EXPECT_GT(cands.size(), 0u);
  for (size_t j : cands) EXPECT_NE(j, 0u);
  // The global nearest neighbor must be among the candidates (it is the
  // directional NN of whichever axis its displacement leans on).
  size_t global_nn = 1;
  double best = L2DistSq(pts[1], pts[0], d);
  for (size_t j = 2; j < pts.size(); ++j) {
    double dd = L2DistSq(pts[j], pts[0], d);
    if (dd < best) {
      best = dd;
      global_nn = j;
    }
  }
  EXPECT_NE(std::find(cands.begin(), cands.end(), global_nn), cands.end());
}

TEST(SelectorTest, NNDirectionOnAxisPoints) {
  // Points exactly on the axes: each must be picked for its direction.
  const size_t d = 3;
  PointSet pts(d);
  pts.Add({0.5, 0.5, 0.5});  // owner
  pts.Add({0.9, 0.5, 0.5});  // +x
  pts.Add({0.1, 0.5, 0.5});  // -x
  pts.Add({0.5, 0.9, 0.5});  // +y
  pts.Add({0.5, 0.5, 0.1});  // -z
  auto cands = SelectNNDirectionCandidates(pts, 0);
  EXPECT_EQ(cands.size(), 4u);
}

TEST(ApproxAlgorithmTest, Names) {
  EXPECT_STREQ(ApproxAlgorithmName(ApproxAlgorithm::kCorrect), "Correct");
  EXPECT_STREQ(ApproxAlgorithmName(ApproxAlgorithm::kPoint), "Point");
  EXPECT_STREQ(ApproxAlgorithmName(ApproxAlgorithm::kSphere), "Sphere");
  EXPECT_STREQ(ApproxAlgorithmName(ApproxAlgorithm::kNNDirection),
               "NN-Direction");
}

}  // namespace
}  // namespace nncell
