#include <cmath>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "common/stats.h"
#include "data/generators.h"
#include "model/cost_model.h"

namespace nncell {
namespace {

TEST(CostModelTest, UnitBallVolumes) {
  EXPECT_NEAR(UnitBallVolume(1), 2.0, 1e-12);           // segment [-1,1]
  EXPECT_NEAR(UnitBallVolume(2), M_PI, 1e-12);          // disk
  EXPECT_NEAR(UnitBallVolume(3), 4.0 * M_PI / 3.0, 1e-12);
  // Ball volume peaks near d=5 and then decays.
  EXPECT_GT(UnitBallVolume(5), UnitBallVolume(12));
}

TEST(CostModelTest, NNDistanceShrinksWithN) {
  EXPECT_GT(ExpectedNNDistance(100, 8), ExpectedNNDistance(10000, 8));
}

TEST(CostModelTest, NNDistanceGrowsWithD) {
  EXPECT_LT(ExpectedNNDistance(1000, 2), ExpectedNNDistance(1000, 8));
  EXPECT_LT(ExpectedNNDistance(1000, 8), ExpectedNNDistance(1000, 16));
  // At high d the expected NN distance stays comparable to the side
  // length of the whole data space even for large N -- the heart of the
  // dimensionality curse argument (the NN sphere of a 100k-point database
  // at d=16 has a diameter larger than the space's side).
  EXPECT_GT(ExpectedNNDistance(100000, 16), 0.5);
}

TEST(CostModelTest, NNDistanceMatchesSimulation) {
  // The model ignores boundary effects, so compare in moderate d with a
  // generous tolerance.
  const size_t d = 4;
  const size_t n = 5000;
  PointSet pts = GenerateUniform(n, d, 1);
  Rng rng(2);
  RunningStats nn;
  for (int t = 0; t < 300; ++t) {
    std::vector<double> q(d);
    for (auto& v : q) v = rng.NextDouble();
    double best = 1e300;
    for (size_t i = 0; i < pts.size(); ++i) {
      best = std::min(best, L2DistSq(pts[i], q.data(), d));
    }
    nn.Add(std::sqrt(best));
  }
  double predicted = ExpectedNNDistance(n, d);
  EXPECT_NEAR(nn.mean(), predicted, 0.35 * predicted);
}

TEST(CostModelTest, PageAccessesMonotoneInD) {
  const size_t n = 100000, c = 30;
  double prev = 0.0;
  for (size_t d : {2u, 4u, 8u, 12u, 16u}) {
    double pages = ExpectedNNPageAccesses(n, d, c);
    EXPECT_GE(pages, prev);
    prev = pages;
  }
}

TEST(CostModelTest, HighDimAccessesMostPages) {
  // [BBKK 97] / paper Section 1: in high dimensions every partitioning
  // index must touch a large portion of the database.
  EXPECT_GT(ExpectedAccessFraction(100000, 16, 30), 0.5);
  EXPECT_LT(ExpectedAccessFraction(100000, 2, 30), 0.05);
}

TEST(CostModelTest, BoundsRespected) {
  for (size_t d : {2u, 8u, 16u}) {
    for (size_t n : {100u, 10000u}) {
      double pages = ExpectedNNPageAccesses(n, d, 30);
      EXPECT_GE(pages, 1.0);
      EXPECT_LE(pages, std::ceil(n / 30.0));
      double frac = ExpectedAccessFraction(n, d, 30);
      EXPECT_GE(frac, 0.0);
      EXPECT_LE(frac, 1.0);
    }
  }
}

TEST(CostModelTest, SinglePageDatabase) {
  EXPECT_DOUBLE_EQ(ExpectedNNPageAccesses(20, 4, 30), 1.0);
}

}  // namespace
}  // namespace nncell
