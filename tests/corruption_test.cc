// Single-bit-flip sweeps over both on-disk formats. The durability
// contract (docs/PERSISTENCE.md) is that EVERY flipped bit is detected at
// load time -- a corrupted snapshot or log produces a precise error,
// never a silently wrong index and never a silently shortened log.

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/durable_format.h"
#include "storage/fs_util.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

// Bit positions sampled by the sweeps: every byte of the first
// `head` bytes and the last `tail` bytes (headers, footers, and the
// structures around them), plus every 97th byte in between; the flipped
// bit rotates with the byte offset so all eight positions occur.
std::vector<size_t> SampleOffsets(size_t size, size_t head, size_t tail) {
  std::vector<size_t> offsets;
  for (size_t i = 0; i < size && i < head; ++i) offsets.push_back(i);
  for (size_t i = head; i + tail < size; i += 97) offsets.push_back(i);
  for (size_t i = size > tail ? size - tail : head; i < size; ++i) {
    if (offsets.empty() || i > offsets.back()) offsets.push_back(i);
  }
  return offsets;
}

TEST(SnapshotCorruptionTest, EveryBitFlipRejected) {
  const std::string path = ::testing::TempDir() + "corruption_snapshot.bin";
  {
    PageFile file(512);
    BufferPool pool(&file, 4096);
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    NNCellIndex index(&pool, 2, opts);
    ASSERT_TRUE(index.BulkBuild(GenerateUniform(30, 2, 9)).ok());
    ASSERT_TRUE(index.Delete(7).ok());
    ASSERT_TRUE(index.Save(path).ok());
  }
  auto pristine = fs::ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  // Sanity: the unmodified image loads.
  {
    PageFile file(512);
    BufferPool pool(&file, 4096);
    ASSERT_TRUE(NNCellIndex::Load(path, &file, &pool).ok());
  }

  size_t flips = 0;
  for (size_t off : SampleOffsets(pristine->size(), 128, 64)) {
    std::string damaged = *pristine;
    damaged[off] ^= static_cast<char>(1u << (off % 8));
    WriteFile(path, damaged);
    PageFile file(512);
    BufferPool pool(&file, 4096);
    auto loaded = NNCellIndex::Load(path, &file, &pool);
    ASSERT_FALSE(loaded.ok())
        << "bit flip at byte " << off << " of " << pristine->size()
        << " went undetected";
    // All-or-nothing: the rejected load must not have touched the target.
    EXPECT_EQ(file.num_pages(), 0u) << "byte " << off;
    ++flips;
  }
  EXPECT_GT(flips, 150u);  // the sweep actually covered something
  std::remove(path.c_str());
}

TEST(SnapshotCorruptionTest, TruncationAtEveryRegionRejected) {
  const std::string path = ::testing::TempDir() + "corruption_truncated.bin";
  {
    PageFile file(512);
    BufferPool pool(&file, 4096);
    NNCellOptions opts;
    NNCellIndex index(&pool, 2, opts);
    ASSERT_TRUE(index.BulkBuild(GenerateUniform(20, 2, 10)).ok());
    ASSERT_TRUE(index.Save(path).ok());
  }
  auto pristine = fs::ReadFileToString(path);
  ASSERT_TRUE(pristine.ok());
  // Cut in the header, the metadata, both page sections, and the footer.
  const size_t n = pristine->size();
  const size_t cuts[] = {0, 1, 16, durable::kSnapshotHeaderBytes - 1,
                         durable::kSnapshotHeaderBytes + 40, n / 2,
                         n - durable::kSnapshotFooterBytes, n - 1};
  for (size_t cut : cuts) {
    WriteFile(path, pristine->substr(0, cut));
    PageFile file(512);
    BufferPool pool(&file, 4096);
    auto loaded = NNCellIndex::Load(path, &file, &pool);
    ASSERT_FALSE(loaded.ok()) << "truncation to " << cut << " bytes accepted";
    EXPECT_EQ(file.num_pages(), 0u) << "cut " << cut;
  }
  std::remove(path.c_str());
}

class DurableCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "durable_corruption_" +
           ::testing::UnitTest::GetInstance()->current_test_info()->name();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  StatusOr<std::unique_ptr<NNCellIndex>> Open() {
    NNCellIndex::DurableOptions dopts;
    dopts.page_size = 1024;
    dopts.pool_pages = 512;
    return NNCellIndex::Open(dir_, 2, NNCellOptions(), dopts, nullptr);
  }

  std::string dir_;
};

TEST_F(DurableCorruptionTest, EveryWalBitFlipRejected) {
  PointSet pts = GenerateUniform(25, 2, 12);
  {
    auto idx = Open();
    ASSERT_TRUE(idx.ok());
    for (size_t i = 0; i < pts.size(); ++i) {
      std::vector<double> p(pts[i], pts[i] + pts.dim());
      ASSERT_TRUE((*idx)->Insert(p).ok());
    }
    ASSERT_TRUE((*idx)->Delete(9).ok());
  }
  const std::string wal_path = dir_ + "/" + durable::kWalFileName;
  auto pristine = fs::ReadFileToString(wal_path);
  ASSERT_TRUE(pristine.ok());
  ASSERT_GT(pristine->size(), durable::kWalHeaderBytes);
  ASSERT_TRUE(Open().ok());  // sanity: unmodified log recovers

  // Every record in a cleanly written log is complete, so there is no
  // legitimate torn region: EVERY flipped bit must surface as an error --
  // in particular none may reclassify intact acked records as a torn tail.
  for (size_t off = 0; off < pristine->size(); ++off) {
    std::string damaged = *pristine;
    damaged[off] ^= static_cast<char>(1u << (off % 8));
    WriteFile(wal_path, damaged);
    auto reopened = Open();
    ASSERT_FALSE(reopened.ok())
        << "wal bit flip at byte " << off << " of " << pristine->size()
        << " went undetected";
  }
}

TEST_F(DurableCorruptionTest, SnapshotFlipFailsOpenLoudly) {
  {
    auto idx = Open();
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE((*idx)->BulkBuild(GenerateUniform(20, 2, 13)).ok());
  }
  const std::string snap_path = dir_ + "/" + durable::kSnapshotFileName;
  auto pristine = fs::ReadFileToString(snap_path);
  ASSERT_TRUE(pristine.ok());
  for (size_t off : SampleOffsets(pristine->size(), 96, 32)) {
    std::string damaged = *pristine;
    damaged[off] ^= static_cast<char>(1u << (off % 8));
    WriteFile(snap_path, damaged);
    // Open must fail -- never fall back to an empty index while a
    // (damaged) snapshot exists.
    auto reopened = Open();
    ASSERT_FALSE(reopened.ok())
        << "snapshot bit flip at byte " << off << " opened anyway";
  }
}

}  // namespace
}  // namespace nncell
