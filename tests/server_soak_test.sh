#!/usr/bin/env bash
# Multi-connection soak: 8 concurrent loadgen connections drive a live
# nncell_server with a mixed query/insert/delete workload while STATS_JSON
# is polled over the wire, then the server is SIGTERM-drained. Checks:
#
#   * the loadgen run finishes with zero errors,
#   * live and final STATS_JSON parse and satisfy conservation
#     (accepted == completed + rejected) and malformed == 0,
#   * the drain is clean (exit 0, DRAINED line, checkpoint=ok),
#   * the checkpointed index is reloadable by a fresh server.
#
# Registered as a ctest in every preset; the tsan preset is the one this
# soak exists for (8 readers + dispatcher + listener under the race
# detector).
#
#   tests/server_soak_test.sh SERVER_BIN LOADGEN_BIN
set -euo pipefail

if [[ $# -ne 2 ]]; then
  echo "usage: $0 SERVER_BIN LOADGEN_BIN" >&2
  exit 2
fi
SERVER_BIN=$1
LOADGEN_BIN=$2

SCRATCH=$(mktemp -d)
SOCK="$SCRATCH/soak.sock"
SRV_LOG="$SCRATCH/server.log"
SRV_PID=""
cleanup() {
  if [[ -n "$SRV_PID" ]] && kill -0 "$SRV_PID" 2>/dev/null; then
    kill -KILL "$SRV_PID" 2>/dev/null || true
  fi
  rm -rf "$SCRATCH"
}
trap cleanup EXIT

fail() {
  echo "FAIL: $*" >&2
  echo "--- server log ---" >&2
  cat "$SRV_LOG" >&2
  exit 1
}

start_server() {
  "$SERVER_BIN" "$SCRATCH/index" --socket="$SOCK" --dim=4 \
    >"$SRV_LOG" 2>&1 &
  SRV_PID=$!
  for _ in $(seq 200); do
    [[ -S "$SOCK" ]] && grep -q READY "$SRV_LOG" && return 0
    kill -0 "$SRV_PID" 2>/dev/null || break
    sleep 0.1
  done
  fail "server never reported READY"
}

# Parses a STATS_JSON body on stdin; exits nonzero if conservation is
# violated or malformed frames were counted.
check_stats() {
  python3 -c '
import json, sys
doc = json.load(sys.stdin)
s = doc["server"]
if s["accepted"] != s["completed"] + s["rejected"]:
    sys.exit(f"conservation violated: {s}")
if s["malformed"] != 0:
    sys.exit(f"malformed frames: {s}")
print("  stats ok: accepted=%d completed=%d rejected=%d open=%d"
      % (s["accepted"], s["completed"], s["rejected"],
         s["connections_open"]))
'
}

start_server

# 8 connections, mixed closed-loop workload. The op count keeps the soak
# around a few seconds even under tsan.
"$LOADGEN_BIN" --socket="$SOCK" --connections=8 --ops=2000 --preload=64 \
  --mix=70:20:10 --zipf=0.9 --seed=99 --label=soak \
  >"$SCRATCH/loadgen.json" &
LG_PID=$!

# Poll live stats over the wire while the soak runs. Conservation is only
# exact at quiescence, so mid-soak polls check parse + malformed only.
POLLS=0
while kill -0 "$LG_PID" 2>/dev/null; do
  if STATS=$("$LOADGEN_BIN" --socket="$SOCK" --stats 2>/dev/null); then
    echo "$STATS" | python3 -c '
import json, sys
s = json.load(sys.stdin)["server"]
if s["malformed"] != 0:
    sys.exit(f"malformed frames mid-soak: {s}")
' || fail "mid-soak stats check"
    POLLS=$((POLLS + 1))
  fi
  sleep 0.2
done
wait "$LG_PID" || fail "loadgen exited nonzero"
echo "  soak finished, $POLLS live stats polls"

python3 -c '
import json, sys
r = json.load(open(sys.argv[1]))["results"]
if r["errors"] != 0:
    sys.exit(f"loadgen errors: {r}")
if r["ok"] == 0:
    sys.exit("no ops completed")
print("  loadgen: %d/%d ok, %d rejected (backpressure)"
      % (r["ok"], r["sent"], r["rejected"]))
' "$SCRATCH/loadgen.json" || fail "loadgen results"

# Quiescent now: full conservation must hold over the wire.
"$LOADGEN_BIN" --socket="$SOCK" --stats | check_stats \
  || fail "final stats check"

# Clean drain: SIGTERM -> exit 0, DRAINED line, checkpoint written.
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "server exited nonzero on SIGTERM"
SRV_PID=""
grep -q "DRAINED" "$SRV_LOG" || fail "no DRAINED line"
grep -q "checkpoint=ok" "$SRV_LOG" || fail "drain did not checkpoint"
DRAINED=$(grep DRAINED "$SRV_LOG")
ACCEPTED=$(sed -nE 's/.*accepted=([0-9]+).*/\1/p' <<<"$DRAINED")
COMPLETED=$(sed -nE 's/.*completed=([0-9]+).*/\1/p' <<<"$DRAINED")
REJECTED=$(sed -nE 's/.*rejected=([0-9]+).*/\1/p' <<<"$DRAINED")
if [[ $((COMPLETED + REJECTED)) -ne "$ACCEPTED" ]]; then
  fail "drain conservation: accepted=$ACCEPTED completed=$COMPLETED rejected=$REJECTED"
fi
echo "  drained: $DRAINED"

# The checkpoint is reloadable: a fresh server on the same directory
# comes up and answers stats.
start_server
"$LOADGEN_BIN" --socket="$SOCK" --stats | check_stats \
  || fail "restarted server stats"
kill -TERM "$SRV_PID"
wait "$SRV_PID" || fail "restarted server exited nonzero"
SRV_PID=""

echo "server soak: PASS"
