// Tests for NN-cell index deletions (the paper defers the dynamic-delete
// case to Roos' algorithms; we implement a recompute-the-neighbors
// variant and verify exactness throughout).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/distance.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace nncell {
namespace {

struct Fixture {
  Fixture(size_t dim, ApproxAlgorithm alg = ApproxAlgorithm::kCorrect)
      : file(2048), pool(&file, 16384) {
    NNCellOptions opts;
    opts.algorithm = alg;
    index = std::make_unique<NNCellIndex>(&pool, dim, opts);
  }
  PageFile file;
  BufferPool pool;
  std::unique_ptr<NNCellIndex> index;
};

// Oracle: NN among live points only.
double BruteNNDist(const NNCellIndex& index, const double* q) {
  double best = 1e300;
  for (uint64_t i = 0; i < index.points().size(); ++i) {
    if (!index.IsAlive(i)) continue;
    best = std::min(best, L2DistSq(index.points()[i], q, index.dim()));
  }
  return std::sqrt(best);
}

TEST(DeleteTest, BasicDeleteThenQuery) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(30, 2, 1)).ok());
  ASSERT_EQ(fx.index->size(), 30u);
  ASSERT_TRUE(fx.index->Delete(5).ok());
  EXPECT_EQ(fx.index->size(), 29u);
  EXPECT_FALSE(fx.index->IsAlive(5));
  EXPECT_TRUE(fx.index->IsAlive(6));
  // Querying the deleted point's location finds someone else, exactly.
  std::vector<double> q = fx.index->points().Get(5);
  auto r = fx.index->Query(q);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->id, 5u);
  EXPECT_NEAR(r->dist, BruteNNDist(*fx.index, q.data()), 1e-9);
}

TEST(DeleteTest, DeleteMissingFails) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(10, 2, 2)).ok());
  EXPECT_EQ(fx.index->Delete(99).code(), StatusCode::kNotFound);
  ASSERT_TRUE(fx.index->Delete(3).ok());
  EXPECT_EQ(fx.index->Delete(3).code(), StatusCode::kNotFound);
}

class DeleteStrategyTest : public ::testing::TestWithParam<ApproxAlgorithm> {};

TEST_P(DeleteStrategyTest, QueriesExactUnderChurn) {
  const size_t dim = 3;
  Fixture fx(dim, GetParam());
  Rng rng(42);
  PointSet pts = GenerateUniform(120, dim, 7);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());

  // Interleave deletes, inserts and queries.
  std::vector<uint64_t> live;
  for (uint64_t i = 0; i < 120; ++i) live.push_back(i);
  for (int step = 0; step < 60; ++step) {
    if (step % 3 != 2 && !live.empty()) {
      size_t pick = rng.NextIndex(live.size());
      ASSERT_TRUE(fx.index->Delete(live[pick]).ok());
      live.erase(live.begin() + pick);
    } else {
      std::vector<double> p = {rng.NextDouble(), rng.NextDouble(),
                               rng.NextDouble()};
      auto id = fx.index->Insert(p);
      if (id.ok()) live.push_back(*id);
    }
    if (step % 5 == 4) {
      for (int t = 0; t < 5; ++t) {
        std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                                 rng.NextDouble()};
        auto r = fx.index->Query(q);
        ASSERT_TRUE(r.ok());
        EXPECT_NEAR(r->dist, BruteNNDist(*fx.index, q.data()), 1e-9)
            << "step " << step << " " << ApproxAlgorithmName(GetParam());
      }
    }
  }
  EXPECT_EQ(fx.index->ValidateTree(), "");
  EXPECT_EQ(fx.index->size(), live.size());
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, DeleteStrategyTest,
    ::testing::Values(ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
                      ApproxAlgorithm::kSphere,
                      ApproxAlgorithm::kNNDirection),
    [](const ::testing::TestParamInfo<ApproxAlgorithm>& info) {
      std::string name = ApproxAlgorithmName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(DeleteTest, DeleteAllButOne) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(20, 2, 3)).ok());
  for (uint64_t i = 1; i < 20; ++i) ASSERT_TRUE(fx.index->Delete(i).ok());
  EXPECT_EQ(fx.index->size(), 1u);
  // The survivor owns the whole space again.
  auto r = fx.index->Query({0.99, 0.99});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->id, 0u);
  // Its recomputed cell should cover everything.
  const auto& rects = fx.index->CellRects(0);
  ASSERT_FALSE(rects.empty());
  HyperRect un = rects[0];
  for (const auto& rect : rects) un.ExpandToRect(rect);
  EXPECT_TRUE(un.ContainsRect(HyperRect::UnitCube(2)));
}

TEST(DeleteTest, DeleteAllThenQueriesFail) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(8, 2, 4)).ok());
  for (uint64_t i = 0; i < 8; ++i) ASSERT_TRUE(fx.index->Delete(i).ok());
  EXPECT_EQ(fx.index->size(), 0u);
  auto r = fx.index->Query({0.5, 0.5});
  EXPECT_FALSE(r.ok());
}

TEST(DeleteTest, ReinsertSameCoordinatesAfterDelete) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(15, 2, 5)).ok());
  std::vector<double> coords = fx.index->points().Get(7);
  ASSERT_TRUE(fx.index->Delete(7).ok());
  auto id = fx.index->Insert(coords);
  ASSERT_TRUE(id.ok());
  EXPECT_NE(*id, 7u);  // ids are never reused
  auto r = fx.index->Query(coords);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->id, *id);
  EXPECT_NEAR(r->dist, 0.0, 1e-12);
}

TEST(DeleteTest, NeighborsGrowAfterDelete) {
  // Delete the center of a 3x3 grid: the neighbors' recomputed cells must
  // cover the vacated center region (no false dismissals there).
  Fixture fx(2);
  PointSet pts = GenerateGrid(3, 2, 0.0, 1);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  // Center point of the grid is at (0.5, 0.5).
  uint64_t center = 0;
  for (uint64_t i = 0; i < pts.size(); ++i) {
    if (std::abs(pts[i][0] - 0.5) < 1e-9 && std::abs(pts[i][1] - 0.5) < 1e-9) {
      center = i;
    }
  }
  ASSERT_TRUE(fx.index->Delete(center).ok());
  auto r = fx.index->Query({0.5, 0.5});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->used_fallback);  // covered by recomputed neighbors
  EXPECT_NEAR(r->dist, 1.0 / 3.0, 1e-9);  // one grid step away
}

TEST(DeleteTest, KnnAfterDeletes) {
  Fixture fx(3);
  PointSet pts = GenerateUniform(80, 3, 6);
  ASSERT_TRUE(fx.index->BulkBuild(pts).ok());
  for (uint64_t i = 0; i < 80; i += 4) ASSERT_TRUE(fx.index->Delete(i).ok());
  Rng rng(7);
  for (int t = 0; t < 20; ++t) {
    std::vector<double> q = {rng.NextDouble(), rng.NextDouble(),
                             rng.NextDouble()};
    auto r = fx.index->KnnQuery(q, 5);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(r->size(), 5u);
    // Compare against brute force over live points.
    std::vector<double> dists;
    for (uint64_t i = 0; i < pts.size(); ++i) {
      if (!fx.index->IsAlive(i)) continue;
      dists.push_back(L2Dist(fx.index->points()[i], q.data(), 3));
    }
    std::sort(dists.begin(), dists.end());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR((*r)[i].dist, dists[i], 1e-9);
      EXPECT_TRUE(fx.index->IsAlive((*r)[i].id));
    }
  }
}

TEST(DeleteTest, StatsTrackDeletions) {
  Fixture fx(2);
  ASSERT_TRUE(fx.index->BulkBuild(GenerateUniform(25, 2, 8)).ok());
  ASSERT_TRUE(fx.index->Delete(0).ok());
  ASSERT_TRUE(fx.index->Delete(1).ok());
  EXPECT_EQ(fx.index->build_stats().deletions, 2u);
  EXPECT_GT(fx.index->build_stats().cells_recomputed, 0u);
}

}  // namespace
}  // namespace nncell
