#include "storage/fs_util.h"

namespace nncell {

Status FlushFd(int fd) { return fs::SyncFd(fd); }

}  // namespace nncell
