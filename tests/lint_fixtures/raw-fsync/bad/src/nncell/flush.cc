#include <unistd.h>

namespace nncell {

void FlushFd(int fd) { fsync(fd); }

}  // namespace nncell
