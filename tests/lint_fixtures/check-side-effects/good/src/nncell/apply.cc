#include <vector>

#include "common/check.h"

namespace nncell {

void PopChecked(std::vector<int>& v, int& cursor) {
  ++cursor;
  NNCELL_DCHECK(cursor < 10);
  auto it = v.erase(v.begin());
  NNCELL_CHECK(it != v.end());
}

}  // namespace nncell
