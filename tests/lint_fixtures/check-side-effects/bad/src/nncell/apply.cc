#include <vector>

#include "common/check.h"

namespace nncell {

void PopChecked(std::vector<int>& v, int& cursor) {
  NNCELL_DCHECK(++cursor < 10);
  NNCELL_CHECK(v.erase(v.begin()) != v.end());
}

}  // namespace nncell
