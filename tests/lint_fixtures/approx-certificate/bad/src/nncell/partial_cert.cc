#include "common/approx.h"

namespace nncell {

// Marks the answer approximate but never records the evidence (how many
// leaves were scanned, what bound the frontier proved), so the caller
// cannot check the (1+epsilon) claim.
ApproxCertificate MarkTruncated() {
  ApproxCertificate cert;
  cert.truncated = true;
  cert.approximate = true;
  return cert;
}

}  // namespace nncell
