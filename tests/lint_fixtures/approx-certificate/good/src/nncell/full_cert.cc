#include <cmath>

#include "common/approx.h"

namespace nncell {

// The full certificate travels together: the flag, the effort spent, and
// the proven lower bound.
ApproxCertificate FillCertificate(bool early, bool truncated,
                                  uint64_t visits, double bound_sq) {
  ApproxCertificate cert;
  cert.terminated_early = early;
  cert.truncated = truncated;
  cert.approximate = early || truncated;
  cert.leaf_visits = visits;
  cert.bound = std::sqrt(bound_sq);
  return cert;
}

// Comparisons are not assignments and do not need the evidence nearby.
bool IsApproximate(const ApproxCertificate& cert) {
  return cert.approximate == true;
}

}  // namespace nncell
