// Fixture: distance work routed through the kernel layer, plus the
// shapes the check must NOT flag (scalar-by-indexed products, `-=`
// updates, annotated exceptions).
#include <cstddef>

namespace kernels {
double Dot(const double* a, const double* b, size_t n);
double L2DistSqPair(const double* a, const double* b, size_t n);
}  // namespace kernels

double DotKernel(const double* a, const double* b, size_t n) {
  return kernels::Dot(a, b, n);
}

double DistKernel(const double* a, const double* b, size_t n) {
  return kernels::L2DistSqPair(a, b, n);
}

void Axpy(double alpha, const double* x, double* y, size_t n) {
  // Scalar-by-indexed product: one indexed factor only, never flagged.
  for (size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void Project(const double* bq, double proj, double* v, size_t n) {
  // `-=` updates (MGS projections) stay out of scope.
  for (size_t i = 0; i < n; ++i) v[i] -= proj * bq[i];
}

double Annotated(const double* a, const double* b, size_t n) {
  double s = 0.0;
  // nncell-lint: allow(scalar-distance-loop) d=1 edge case, not a hot loop
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}
