// Fixture: open-coded distance and dot loops that must go through the
// kernel layer.
#include <cstddef>

double DotLoop(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

double DistLoop(const double* a, const double* b, size_t n) {
  double s = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}
