#include <memory>

namespace nncell {

struct Node {};

std::unique_ptr<Node> MakeNode() { return std::make_unique<Node>(); }

Node& Singleton() {
  // nncell-lint: allow(naked-new) process-lifetime singleton, never freed
  static Node* const g = new Node();
  return *g;
}

}  // namespace nncell
