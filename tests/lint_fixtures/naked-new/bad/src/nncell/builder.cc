namespace nncell {

struct Node {};

Node* MakeNode() { return new Node(); }

}  // namespace nncell
