#include <atomic>

namespace nncell {

std::atomic<int> g_hits{0};

void Bump() {
  // nncell-lint: allow(relaxed-atomics) monotonic hint counter, no ordering
  g_hits.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace nncell
