#include "storage/buffer_pool.h"

namespace nncell {

const char* ReadNodeUnsafe(BufferPool* pool, PageId id) {
  Frame* frame = pool->Fetch(id);
  return frame->data();
}

}  // namespace nncell
