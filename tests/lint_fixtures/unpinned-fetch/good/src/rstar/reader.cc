#include "storage/buffer_pool.h"

namespace nncell {

const char* ReadNodePinned(BufferPool* pool, PageId id) {
  PageGuard guard(pool, id);  // pin keeps the frame resident
  Frame* frame = pool->Fetch(id);
  return frame->data();
}

}  // namespace nncell
