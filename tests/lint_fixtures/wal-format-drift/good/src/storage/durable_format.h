#ifndef FIXTURE_DURABLE_FORMAT_H_
#define FIXTURE_DURABLE_FORMAT_H_

#include <cstddef>

namespace nncell {

inline constexpr size_t kWalHeaderBytes = 24;
inline constexpr size_t kWalRecordHeaderBytes = 20;

}  // namespace nncell

#endif  // FIXTURE_DURABLE_FORMAT_H_
