#include "common/thread_annotations.h"

namespace nncell {

class Box {
 public:
  void Set(int v) {
    MutexLock lock(mu_);
    value_ = v;
  }

 private:
  Mutex mu_;
  int value_ NNCELL_GUARDED_BY(mu_) = 0;
};

}  // namespace nncell
