#include "common/thread_annotations.h"

namespace nncell {

// nncell-lint: allow(tsa-escape) this suppression must be ignored
void SneakPastAnalysis() NNCELL_NO_THREAD_SAFETY_ANALYSIS {}

}  // namespace nncell
