#include <fcntl.h>

#include "storage/fs_util.h"

namespace nncell {
namespace shard {

// The one translation unit of src/shard/ allowed raw file I/O (the real
// shard_manifest.cc owns the manifest and router snapshot bytes); the
// check must stay silent here.
Status SaveManifestBytes(const std::string& path, const std::string& bytes) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
  }
  return fs::WriteFileAtomic(path, bytes);
}

}  // namespace shard
}  // namespace nncell
