#include "shard/shard_manifest.h"
#include "storage/fs_util.h"

namespace nncell {
namespace shard {

// Disk access goes through the manifest helpers and directory-level
// fs_util predicates only; byte-level I/O lives in shard_manifest.cc.
bool HasManifest(const std::string& dir) {
  return fs::PathExists(dir + "/shard.manifest");
}

Status PrepareShardDir(const std::string& dir) {
  return fs::EnsureDirectory(dir);
}

}  // namespace shard
}  // namespace nncell
