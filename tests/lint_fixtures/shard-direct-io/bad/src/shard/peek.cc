#include <fstream>

#include "storage/fs_util.h"

namespace nncell {
namespace shard {

// Reaches into a sibling shard's snapshot file directly instead of going
// through the router / manifest helpers.
bool PeekShard(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return false;
  auto bytes = fs::ReadFileToString(path + "/snapshot.nncell");
  return bytes.ok();
}

}  // namespace shard
}  // namespace nncell
