// Content-based image retrieval, the paper's motivating application
// [Fal+ 94, SH 94]: images are reduced to color-histogram feature vectors;
// "find the most similar image" is a nearest-neighbor query in feature
// space. This example builds a synthetic image collection (mixtures of a
// few dominant hues per image category), indexes the histograms with the
// NN-cell index, and compares retrieval against a sequential scan.
//
//   $ ./build/examples/image_retrieval

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stopwatch.h"
#include "nncell/nncell_index.h"
#include "scan/sequential_scan.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace {

using namespace nncell;

// 8-bucket hue histogram of a synthetic image: each category mixes two
// dominant hue buckets plus noise, then normalizes to sum 1 (so vectors
// live on a simplex inside [0,1]^8 -- clustered, correlated "real" data).
std::vector<double> SyntheticHistogram(size_t category, Rng& rng) {
  const size_t buckets = 8;
  std::vector<double> h(buckets);
  size_t main1 = category % buckets;
  size_t main2 = (category * 3 + 1) % buckets;
  for (size_t b = 0; b < buckets; ++b) {
    h[b] = 0.02 + 0.05 * rng.NextDouble();
  }
  h[main1] += 0.5 + 0.2 * rng.NextDouble();
  h[main2] += 0.25 + 0.1 * rng.NextDouble();
  double sum = 0.0;
  for (double v : h) sum += v;
  for (double& v : h) v /= sum;
  return h;
}

}  // namespace

int main() {
  const size_t dim = 8;
  const size_t images = 1500;
  const size_t categories = 10;
  Rng rng(2026);

  PageFile file(4096);
  BufferPool pool(&file, 2048);
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kNNDirection;  // robust on clusters
  NNCellIndex index(&pool, dim, options);

  // Scan baseline on its own storage.
  PageFile scan_file(4096);
  BufferPool scan_pool(&scan_file, 64);
  SequentialScan scan(&scan_pool, dim);

  PointSet collection(dim);
  std::vector<size_t> labels;
  std::set<std::vector<double>> seen;
  for (size_t i = 0; i < images; ++i) {
    size_t category = i % categories;
    std::vector<double> h = SyntheticHistogram(category, rng);
    if (!seen.insert(h).second) continue;  // skip rare exact duplicates
    scan.Insert(h.data(), labels.size());
    collection.Add(h);
    labels.push_back(category);
  }
  // Static build: the collection is known upfront, so every cell is
  // approximated once against the full point set.
  Status status = index.BulkBuild(collection);
  if (!status.ok()) {
    std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu image histograms (%zu categories)\n", index.size(),
              categories);

  // Retrieval: for fresh query images, the nearest stored histogram should
  // come from the same category.
  size_t correct = 0;
  const size_t queries = 200;
  double index_ms = 0.0, scan_ms = 0.0;
  uint64_t index_pages = 0, scan_pages = 0;
  for (size_t t = 0; t < queries; ++t) {
    size_t category = t % categories;
    std::vector<double> q = SyntheticHistogram(category, rng);

    pool.DropCache();
    pool.ResetStats();
    Stopwatch timer;
    auto result = index.Query(q);
    index_ms += timer.ElapsedMillis();
    index_pages += pool.stats().physical_reads;
    if (!result.ok()) continue;

    scan_pool.DropCache();
    scan_pool.ResetStats();
    Stopwatch scan_timer;
    auto scan_result = scan.NearestNeighbor(q.data());
    scan_ms += scan_timer.ElapsedMillis();
    scan_pages += scan_pool.stats().physical_reads;

    if (scan_result.id != result->id &&
        std::abs(scan_result.dist - result->dist) > 1e-9) {
      std::fprintf(stderr, "MISMATCH vs scan on query %zu\n", t);
      return 1;
    }
    if (labels[result->id] == category) ++correct;
  }

  std::printf("category precision@1: %.1f%%\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(queries));
  std::printf("NN-cell index: %.3f ms CPU, %.1f pages per query\n",
              index_ms / queries,
              static_cast<double>(index_pages) / queries);
  std::printf("sequential scan: %.3f ms CPU, %.1f pages per query\n",
              scan_ms / queries, static_cast<double>(scan_pages) / queries);
  return 0;
}
