// Dynamic workload on a *durable* index: the paper's Section 2 argues the
// NN-cell approach is dynamic despite precomputing the solution space -- a
// new point only shrinks existing cells, so stale approximations stay
// correct and a targeted maintenance pass restores quality. This example
// runs that insert/query stream through NNCellIndex::Open, so every
// acknowledged operation is also logged to a write-ahead log before it
// applies, then simulates a crash (dropping the in-memory index without a
// checkpoint or clean shutdown) and shows recovery replaying the log back
// to the exact same state (docs/PERSISTENCE.md, docs/ARCHITECTURE.md).
//
//   $ ./build/examples/dynamic_updates

#include <cstdio>
#include <filesystem>
#include <memory>

#include "common/distance.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"

int main() {
  using namespace nncell;
  const size_t dim = 4;
  const size_t total = 1200;
  const std::string dir =
      std::filesystem::temp_directory_path().string() + "/nncell_dynamic_demo";
  std::filesystem::remove_all(dir);

  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  options.maintenance = MaintenanceMode::kExact;

  PointSet stream = GenerateUniform(total, dim, 7);
  PointSet queries = GenerateQueries(100, dim, 8);

  // Phase 1: a durable index absorbs the stream. Insert() returns only
  // after the operation's WAL record is on disk (wal_group_sync = 1).
  {
    auto opened = NNCellIndex::Open(dir, dim, options);
    if (!opened.ok()) {
      std::fprintf(stderr, "open: %s\n", opened.status().ToString().c_str());
      return 1;
    }
    NNCellIndex& index = **opened;

    std::printf("%-10s%-12s%-14s%-14s\n", "inserted", "overlap",
                "recomputed", "mismatches");
    size_t report_every = total / 6;
    for (size_t i = 0; i < stream.size(); ++i) {
      auto id = index.Insert(stream.Get(i));
      if (!id.ok()) continue;

      if ((i + 1) % report_every == 0 || i + 1 == stream.size()) {
        // Verify exactness against a brute-force scan of what is inserted.
        size_t mismatches = 0;
        for (size_t t = 0; t < queries.size(); ++t) {
          auto result = index.Query(queries[t]);
          if (!result.ok()) {
            ++mismatches;
            continue;
          }
          double best = 1e300;
          const PointSet& pts = index.points();
          for (size_t j = 0; j < pts.size(); ++j) {
            double d = L2DistSq(pts[j], queries[t], dim);
            if (d < best) best = d;
          }
          if (std::abs(result->dist * result->dist - best) > 1e-9) {
            ++mismatches;
          }
        }
        std::printf("%-10zu%-12.2f%-14zu%-14zu\n", index.size(),
                    index.ExpectedCandidates(),
                    index.build_stats().cells_recomputed, mismatches);
      }
      // Midway through, fold the log so far into a checksummed snapshot;
      // everything after this line survives only in the WAL.
      if (i + 1 == total / 2) {
        if (Status st = index.Checkpoint(); !st.ok()) {
          std::fprintf(stderr, "checkpoint: %s\n", st.ToString().c_str());
          return 1;
        }
      }
    }
    std::printf(
        "\nall reports exact; %zu of %zu inserts triggered cell maintenance "
        "work\n",
        index.build_stats().cells_recomputed, index.size());

    // "Crash": the index goes away here with half the stream never
    // checkpointed -- no Save, no clean shutdown.
  }

  // Phase 2: recovery. Open() loads the snapshot, replays the WAL tail,
  // and the index answers exactly as before the crash.
  NNCellIndex::RecoveryInfo info;
  auto recovered = NNCellIndex::Open(dir, dim, options,
                                     NNCellIndex::DurableOptions(), &info);
  if (!recovered.ok()) {
    std::fprintf(stderr, "recover: %s\n",
                 recovered.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "\nrecovered after simulated crash: snapshot covered lsn %llu, "
      "%llu wal records replayed, %zu live points\n",
      static_cast<unsigned long long>(info.snapshot_wal_lsn),
      static_cast<unsigned long long>(info.wal_records_replayed),
      (*recovered)->size());

  size_t mismatches = 0;
  for (size_t t = 0; t < queries.size(); ++t) {
    auto result = (*recovered)->Query(queries[t]);
    if (!result.ok()) {
      ++mismatches;
      continue;
    }
    double best = 1e300;
    const PointSet& pts = (*recovered)->points();
    for (size_t j = 0; j < pts.size(); ++j) {
      double d = L2DistSq(pts[j], queries[t], dim);
      if (d < best) best = d;
    }
    if (std::abs(result->dist * result->dist - best) > 1e-9) ++mismatches;
  }
  std::printf("post-recovery query check: %zu mismatches over %zu queries\n",
              mismatches, queries.size());
  std::filesystem::remove_all(dir);
  return mismatches == 0 ? 0 : 1;
}
