// Dynamic workload: the paper's Section 2 argues the NN-cell approach is
// dynamic despite precomputing the solution space -- a new point only
// shrinks existing cells, so stale approximations stay correct and a
// targeted maintenance pass restores quality. This example interleaves
// inserts and queries and tracks how maintenance keeps overlap (and thus
// query cost) low.
//
//   $ ./build/examples/dynamic_updates

#include <cstdio>

#include "common/distance.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

int main() {
  using namespace nncell;
  const size_t dim = 4;
  const size_t total = 1200;

  PageFile file(4096);
  BufferPool pool(&file, 2048);
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  options.maintenance = MaintenanceMode::kExact;
  NNCellIndex index(&pool, dim, options);

  PointSet stream = GenerateUniform(total, dim, 7);
  PointSet queries = GenerateQueries(100, dim, 8);

  std::printf("%-10s%-12s%-14s%-14s\n", "inserted", "overlap",
              "recomputed", "mismatches");
  size_t checkpoint = total / 6;
  for (size_t i = 0; i < stream.size(); ++i) {
    auto id = index.Insert(stream.Get(i));
    if (!id.ok()) continue;

    if ((i + 1) % checkpoint == 0 || i + 1 == stream.size()) {
      // Verify exactness against a brute-force scan of what is inserted.
      size_t mismatches = 0;
      for (size_t t = 0; t < queries.size(); ++t) {
        auto result = index.Query(queries[t]);
        if (!result.ok()) {
          ++mismatches;
          continue;
        }
        double best = 1e300;
        const PointSet& pts = index.points();
        for (size_t j = 0; j < pts.size(); ++j) {
          double d = L2DistSq(pts[j], queries[t], dim);
          if (d < best) best = d;
        }
        if (std::abs(result->dist * result->dist - best) > 1e-9) ++mismatches;
      }
      std::printf("%-10zu%-12.2f%-14zu%-14zu\n", index.size(),
                  index.ExpectedCandidates(),
                  index.build_stats().cells_recomputed, mismatches);
    }
  }
  std::printf(
      "\nall checkpoints exact; %zu of %zu inserts triggered cell "
      "maintenance work\n",
      index.build_stats().cells_recomputed, index.size());
  return 0;
}
