// Shape similarity search on Fourier descriptors -- the paper's "real
// data" scenario (CAD parts described by Fourier points, d=8) and the
// classic feature transformation of [Jag 91] / [MG 93]: a 2-D contour is
// sampled, its centroid-distance signature is Fourier-transformed, and the
// leading coefficient magnitudes form the feature vector. Similar shapes
// have nearby descriptors, so shape retrieval = NN search.
//
//   $ ./build/examples/shape_retrieval

#include <cmath>
#include <complex>
#include <cstdio>
#include <set>
#include <vector>

#include "common/rng.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace {

using namespace nncell;

// A synthetic closed contour: radius signature r(theta) built from a few
// harmonics. `family` controls which harmonics dominate (shape class);
// noise individualizes each instance.
std::vector<double> ContourSignature(size_t family, double noise, Rng& rng,
                                     size_t samples = 128) {
  std::vector<double> r(samples);
  double a2 = (family == 0) ? 0.4 : 0.05;  // ellipse-ish
  double a3 = (family == 1) ? 0.4 : 0.05;  // triangle-ish
  double a5 = (family == 2) ? 0.3 : 0.02;  // star-ish
  for (size_t i = 0; i < samples; ++i) {
    double theta = 2.0 * M_PI * static_cast<double>(i) / samples;
    r[i] = 1.0 + a2 * std::cos(2 * theta) + a3 * std::cos(3 * theta) +
           a5 * std::cos(5 * theta) + noise * rng.NextGaussian() * 0.02;
  }
  return r;
}

// Leading DFT magnitudes of the signature, scale-normalized by |F_0| and
// mapped into [0,1]^dim. This is the classic Fourier shape descriptor.
std::vector<double> FourierDescriptor(const std::vector<double>& signature,
                                      size_t dim) {
  const size_t n = signature.size();
  std::vector<double> feature(dim);
  double dc = 0.0;
  for (double v : signature) dc += v;
  dc = std::abs(dc) / static_cast<double>(n);
  for (size_t h = 1; h <= dim; ++h) {
    std::complex<double> coeff(0.0, 0.0);
    for (size_t i = 0; i < n; ++i) {
      double angle = -2.0 * M_PI * static_cast<double>(h * i) / n;
      coeff += signature[i] * std::complex<double>(std::cos(angle),
                                                   std::sin(angle));
    }
    double magnitude = std::abs(coeff) / (static_cast<double>(n) * dc);
    feature[h - 1] = std::min(1.0, 2.0 * magnitude);  // into [0,1]
  }
  return feature;
}

}  // namespace

int main() {
  const size_t dim = 8;  // the paper's Fourier-point dimensionality
  const size_t shapes = 1200;
  const size_t families = 3;
  Rng rng(777);

  PageFile file(4096);
  BufferPool pool(&file, 2048);
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kNNDirection;
  options.decomposition.max_partitions = 4;  // Section 3: tighter cells
  NNCellIndex index(&pool, dim, options);

  PointSet descriptors(dim);
  std::vector<size_t> labels;
  std::set<std::vector<double>> seen;
  for (size_t i = 0; i < shapes; ++i) {
    size_t family = i % families;
    auto signature = ContourSignature(family, 1.0, rng);
    auto descriptor = FourierDescriptor(signature, dim);
    if (!seen.insert(descriptor).second) continue;
    descriptors.Add(descriptor);
    labels.push_back(family);
  }
  Status status = index.BulkBuild(descriptors);
  if (!status.ok()) {
    std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu Fourier shape descriptors (d=%zu, %zu families)\n",
              index.size(), dim, families);
  std::printf("expected candidate cells per query: %.2f\n",
              index.ExpectedCandidates());

  // Retrieval check: query with fresh shapes; the nearest descriptor
  // should come from the same family.
  size_t correct = 0;
  const size_t queries = 150;
  double candidates = 0.0;
  for (size_t t = 0; t < queries; ++t) {
    size_t family = t % families;
    auto signature = ContourSignature(family, 1.0, rng);
    auto descriptor = FourierDescriptor(signature, dim);
    auto result = index.Query(descriptor);
    if (!result.ok()) continue;
    candidates += static_cast<double>(result->candidates);
    if (labels[result->id] == family) ++correct;
  }
  std::printf("family precision@1: %.1f%% over %zu queries\n",
              100.0 * static_cast<double>(correct) /
                  static_cast<double>(queries),
              queries);
  std::printf("avg candidate cells inspected per query: %.1f (of %zu)\n",
              candidates / static_cast<double>(queries), index.size());
  return 0;
}
