// Quickstart: build an NN-cell index over a few thousand points and run
// exact nearest-neighbor queries as point queries on the precomputed
// solution space.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

int main() {
  using namespace nncell;

  // 1. Paged storage: a simulated disk with 4 KiB pages and an LRU cache.
  PageFile file(4096);
  BufferPool pool(&file, 1024);

  // 2. The index. The Sphere strategy approximates each Voronoi cell from
  //    the points near it; queries stay exact regardless (Lemma 2).
  const size_t dim = 6;
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  NNCellIndex index(&pool, dim, options);

  // 3. Load data: 2000 uniform points in [0,1]^6.
  PointSet pts = GenerateUniform(2000, dim, /*seed=*/1);
  Status status = index.BulkBuild(pts);
  if (!status.ok()) {
    std::fprintf(stderr, "build failed: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("built NN-cell index over %zu points (dim=%zu)\n", index.size(),
              dim);
  std::printf("expected candidate cells per query: %.2f\n",
              index.ExpectedCandidates());

  // 4. Query: nearest neighbor of an arbitrary point in the data space.
  std::vector<double> q = {0.31, 0.77, 0.15, 0.58, 0.92, 0.44};
  auto result = index.Query(q);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("nearest neighbor: id=%llu dist=%.4f (%zu candidate cells)\n",
              static_cast<unsigned long long>(result->id), result->dist,
              result->candidates);

  // 5. Dynamic insert: the index stays exact as points arrive.
  auto id = index.Query(q);
  auto inserted = index.Insert(q);  // insert the query point itself
  if (!inserted.ok()) {
    std::printf("insert failed: %s\n", inserted.status().ToString().c_str());
    return 1;
  }
  auto after = index.Query(q);
  std::printf("after inserting the query point: id=%llu dist=%.4f (was %.4f)\n",
              static_cast<unsigned long long>(after->id), after->dist,
              id->dist);

  // 6. Batched queries across worker threads. SetNumThreads(0) uses one
  //    thread per hardware core; the answers are identical to a serial
  //    loop of Query() calls (the readers only share the buffer pool).
  //    options.parallel.num_threads would likewise parallelize BulkBuild
  //    -- producing a byte-identical index.
  index.SetNumThreads(0);
  PointSet batch = GenerateQueries(64, dim, /*seed=*/9);
  auto results = index.QueryBatch(batch);
  if (!results.ok()) {
    std::fprintf(stderr, "batch failed: %s\n",
                 results.status().ToString().c_str());
    return 1;
  }
  double mean_dist = 0.0;
  for (const auto& r : *results) mean_dist += r.dist;
  std::printf("batched %zu queries in parallel; mean NN distance %.4f\n",
              results->size(), mean_dist / static_cast<double>(results->size()));
  return 0;
}
