// SIMD kernel regression bench: batched distance scans over the SoA block
// store and the LP panel kernels, scalar table vs the dispatched table.
// Emits one JSON document with wall-clock, the active dispatch level, and
// deterministic counters (distance evaluations + a bit-fold checksum of
// every computed double); tools/bench_simd.sh gates pull requests on the
// committed BENCH_simd.json baseline.
//
// The checksum and eval counts are a pure function of dim/n/seed and the
// FP-determinism contract (docs/KERNELS.md): every dispatch level must
// produce bit-identical doubles, so the gate is machine-independent and
// catches any kernel that drifts from the scalar reference. Wall-clock and
// the speedup headline are recorded for the human reader, never gated.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/kernels/soa_store.h"
#include "common/rng.h"

namespace nncell {
namespace {

struct SimdConfig {
  const char* name;
  size_t dim;
  size_t n;  // points / rows per pass
};

// d=16 is the acceptance headline (the paper's Fourier workload width);
// the small dims exercise the tail paths, d=32 the multi-block path.
const SimdConfig kConfigs[] = {
    {"l2_soa_d2_n65536", 2, 65536},   {"l2_soa_d4_n65536", 4, 65536},
    {"l2_soa_d8_n32768", 8, 32768},   {"l2_soa_d16_n16384", 16, 16384},
    {"l2_soa_d32_n8192", 32, 8192},   {"matvec_d16_n16384", 16, 16384},
};

// Order-insensitive bit-fold of a double array: XOR of the bit patterns
// mixed with a multiplicative hash. Any single-ulp drift in any lane flips
// the fold.
uint64_t FoldBits(uint64_t acc, const double* v, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    uint64_t bits;
    std::memcpy(&bits, &v[i], sizeof(bits));
    acc ^= bits + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  }
  return acc;
}

struct PassResult {
  uint64_t checksum = 0;
  uint64_t evals = 0;
  double seconds = 0.0;  // best-of-reps wall time for the timed passes
};

// One deterministic counted pass + `reps` timed passes of the SoA batched
// L2 scan with the given op table.
PassResult RunL2Soa(const kernels::KernelOps& ops, const SimdConfig& cfg,
                    int reps) {
  Rng rng(42);
  kernels::SoaBlockStore store(cfg.dim);
  std::vector<double> p(cfg.dim);
  for (size_t i = 0; i < cfg.n; ++i) {
    for (auto& v : p) v = rng.NextDouble();
    store.Append(p.data());
  }
  std::vector<double> q(cfg.dim);
  for (auto& v : q) v = rng.NextDouble();

  std::vector<double> out(cfg.n);
  PassResult r;
  ops.l2_batch_soa(q.data(), store.blocks(), cfg.n, cfg.dim, out.data());
  r.checksum = FoldBits(0, out.data(), cfg.n);
  r.evals = cfg.n;

  r.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    ops.l2_batch_soa(q.data(), store.blocks(), cfg.n, cfg.dim, out.data());
    auto t1 = std::chrono::steady_clock::now();
    r.seconds =
        std::min(r.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  return r;
}

// Same shape for the LP panel kernel: y = A x over a padded row-major
// matrix (the ActiveSetSolver / FaceSolveSession row-product pass).
PassResult RunMatVec(const kernels::KernelOps& ops, const SimdConfig& cfg,
                     int reps) {
  Rng rng(42);
  const size_t stride = kernels::PaddedDim(cfg.dim);
  std::vector<double> a(cfg.n * stride, 0.0);
  for (size_t r = 0; r < cfg.n; ++r) {
    for (size_t i = 0; i < cfg.dim; ++i) {
      a[r * stride + i] = rng.NextDouble(-1.0, 1.0);
    }
  }
  std::vector<double> x(cfg.dim);
  for (auto& v : x) v = rng.NextDouble(-1.0, 1.0);

  std::vector<double> y(cfg.n);
  PassResult r;
  ops.mat_vec(a.data(), cfg.n, cfg.dim, stride, x.data(), y.data());
  r.checksum = FoldBits(0, y.data(), cfg.n);
  r.evals = cfg.n;

  r.seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    ops.mat_vec(a.data(), cfg.n, cfg.dim, stride, x.data(), y.data());
    auto t1 = std::chrono::steady_clock::now();
    r.seconds =
        std::min(r.seconds, std::chrono::duration<double>(t1 - t0).count());
  }
  return r;
}

PassResult Run(const kernels::KernelOps& ops, const SimdConfig& cfg,
               int reps) {
  if (std::strncmp(cfg.name, "matvec", 6) == 0) {
    return RunMatVec(ops, cfg, reps);
  }
  return RunL2Soa(ops, cfg, reps);
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  // Quick and full runs use identical data and the identical counted pass
  // (so a quick run gates against the committed full baseline); they
  // differ only in how many timed reps damp scheduler noise.
  const int reps = quick ? 20 : 200;

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }

  std::fprintf(out, "{\n  \"schema\": 1,\n  \"seed\": 42,\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"dispatch\": \"%s\",\n", kernels::ActiveLevelName());
  std::fprintf(out, "  \"dispatch_reason\": \"%s\",\n",
               kernels::DispatchReason());
  std::fprintf(out, "  \"configs\": [\n");
  bool first = true;
  int mismatches = 0;
  for (const SimdConfig& cfg : kConfigs) {
    PassResult scalar = Run(kernels::ScalarOps(), cfg, reps);
    PassResult dispatched = Run(kernels::Ops(), cfg, reps);

    // The bench is itself a bit-equality check: a dispatched table whose
    // checksum diverges from scalar violates the kernel contract.
    if (scalar.checksum != dispatched.checksum ||
        scalar.evals != dispatched.evals) {
      std::fprintf(stderr, "%s: dispatched/%s diverges from scalar!\n",
                   cfg.name, kernels::ActiveLevelName());
      ++mismatches;
    }

    double speedup = dispatched.seconds > 0.0
                         ? scalar.seconds / dispatched.seconds
                         : 0.0;
    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out, "    {\n      \"name\": \"%s\",\n", cfg.name);
    std::fprintf(out, "      \"dim\": %zu, \"n\": %zu,\n", cfg.dim, cfg.n);
    std::fprintf(out,
                 "      \"checksum\": \"%016llx\", \"evals\": %llu,\n",
                 static_cast<unsigned long long>(scalar.checksum),
                 static_cast<unsigned long long>(scalar.evals));
    std::fprintf(out,
                 "      \"scalar_seconds\": %.9f, \"dispatched_seconds\": "
                 "%.9f, \"wall_speedup\": %.3f\n    }",
                 scalar.seconds, dispatched.seconds, speedup);

    std::fprintf(stderr, "%-20s scalar %8.3fus  %s %8.3fus  (%.2fx)\n",
                 cfg.name, scalar.seconds * 1e6, kernels::ActiveLevelName(),
                 dispatched.seconds * 1e6, speedup);
  }
  std::fprintf(out, "\n  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace nncell

int main(int argc, char** argv) { return nncell::Main(argc, argv); }
