// Figure 8 of the paper: speed-up of the NN-cell approach over the R*-tree
// depending on the dimensionality (the paper reaches >325% at d=16).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::vector<size_t> dims = {4, 6, 8, 10, 12, 14, 16};
  const size_t n = Scaled(1200, config.scale, 50);

  std::printf(
      "Figure 8: speed-up of the NN-cell approach over the R*-tree,\n"
      "N=%zu uniform points, %zu cold NN queries\n\n",
      n, config.queries);
  Table table({"dim", "R*[ms]", "NN-cell[ms]", "speedup[%]"});
  for (size_t dim : dims) {
    PointSet pts = GenerateUniform(n, dim, config.seed + dim);
    PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ dim);

    PointTreeSetup rstar = BuildPointTree(pts, /*use_xtree=*/false, config);
    QueryCost r_cost = MeasurePointTreeNN(rstar, queries, config);

    NNCellOptions opts;
    opts.algorithm = RecommendedAlgorithm(dim);
    NNCellSetup nncell = BuildNNCell(pts, opts, config);
    QueryCost c_cost = MeasureNNCellQueries(nncell, queries, config);

    double speedup = 100.0 * r_cost.total_ms / std::max(c_cost.total_ms, 1e-9);
    table.AddRow({Table::Int(dim), Table::Num(r_cost.total_ms, 2),
                  Table::Num(c_cost.total_ms, 2), Table::Num(speedup, 0)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
