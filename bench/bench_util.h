#ifndef NNCELL_BENCH_BENCH_UTIL_H_
#define NNCELL_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/point_set.h"
#include "nncell/nncell_index.h"
#include "rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "xtree/xtree.h"

namespace nncell {
namespace bench {

// Shared configuration of the figure benchmarks. Defaults are sized to a
// single core so the full suite finishes in minutes; pass --scale=N (or set
// NNCELL_BENCH_SCALE) to approach the paper's database sizes.
struct BenchConfig {
  double scale = 1.0;
  size_t queries = 40;           // query sample per measurement
  double page_latency_ms = 10.0;  // simulated disk latency per page access
  // Total-time cost model: the paper's 1998 testbed (HP 720) spends on the
  // order of a few hundred modern-CPU-equivalents per instruction, making
  // NN queries CPU-bound ("the total search time ... is not dominated by
  // the number of page accesses"). total = cpu * cpu_scale + pages * lat.
  double cpu_scale = 200.0;
  size_t page_size = 4096;       // the paper's 4 KB blocks
  size_t cache_pages = 2048;     // equal cache budget per index (8 MB)
  uint64_t seed = 42;
  bool cold_queries = true;      // drop the cache before every query
  // Worker threads for the parallel build / batched-query phases
  // (NNCellOptions::parallel). 1 = serial, 0 = one per hardware core.
  size_t threads = 1;
};

// Parses --scale=, --queries=, --latency-ms=, --cpu-scale=, --seed=,
// --threads= and --warm flags plus the NNCELL_BENCH_SCALE environment
// variable.
BenchConfig ParseArgs(int argc, char** argv);

// base * scale, at least `min`.
size_t Scaled(size_t base, double scale, size_t min = 2);

// Fixed-width text table matching the paper's figure series.
class Table {
 public:
  explicit Table(std::vector<std::string> header, int width = 14);
  void AddRow(const std::vector<std::string>& cells);
  void Print() const;

  static std::string Num(double v, int precision = 3);
  static std::string Int(uint64_t v);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  int width_;
};

// Per-query cost aggregates of a measurement run.
struct QueryCost {
  double cpu_ms = 0.0;        // measured CPU time per query
  double page_accesses = 0.0; // physical page reads per query
  double total_ms = 0.0;      // cpu + page_accesses * latency
  double candidates = 0.0;    // NN-cell only: candidate cells per query
  // Metrics-registry deltas per query (0 when metrics are compiled out).
  double node_visits = 0.0;    // index.tree.node_visits
  double distance_calcs = 0.0; // query.nn.distance_computations
};

// A fully assembled NN-cell index with its own paged storage.
struct NNCellSetup {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<NNCellIndex> index;
  double build_seconds = 0.0;
};

NNCellSetup BuildNNCell(const PointSet& pts, NNCellOptions options,
                        const BenchConfig& config);

// A point index (R*-tree or X-tree over the raw points) for the baselines.
struct PointTreeSetup {
  std::unique_ptr<PageFile> file;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<RTreeCore> tree;
  double build_seconds = 0.0;
};

PointTreeSetup BuildPointTree(const PointSet& pts, bool use_xtree,
                              const BenchConfig& config);

// Measures NN query costs. All variants verify their answers against each
// other implicitly through the tests; here we only time them. The point
// trees use the classic [RKV 95] branch-and-bound NN search -- the paper's
// baseline algorithm (its min-max sorting is the CPU cost the NN-cell
// point query avoids).
QueryCost MeasureNNCellQueries(const NNCellSetup& setup,
                               const PointSet& queries,
                               const BenchConfig& config);
QueryCost MeasurePointTreeNN(const PointTreeSetup& setup,
                             const PointSet& queries,
                             const BenchConfig& config);

// Picks the paper's recommended build algorithm for a dimensionality
// (Fig. 5: Sphere wins for d <= 8, NN-Direction for higher d).
ApproxAlgorithm RecommendedAlgorithm(size_t dim);

}  // namespace bench
}  // namespace nncell

#endif  // NNCELL_BENCH_BENCH_UTIL_H_
