# Benchmark targets. Included from the top-level CMakeLists (not via
# add_subdirectory) so that ${CMAKE_BINARY_DIR}/bench contains only the
# runnable binaries: the reproduction runbook executes build/bench/*.

add_library(nncell_bench_util STATIC ${CMAKE_SOURCE_DIR}/bench/bench_util.cc)
target_link_libraries(nncell_bench_util PUBLIC
  nncell_core nncell_data nncell_rstar nncell_xtree nncell_storage
)
target_include_directories(nncell_bench_util PUBLIC ${CMAKE_SOURCE_DIR})

set(NNCELL_BENCH_BINDIR ${CMAKE_BINARY_DIR}/bench)

function(nncell_add_fig name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE nncell_bench_util)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${NNCELL_BENCH_BINDIR})
endfunction()

nncell_add_fig(fig04_approx_algorithms)
nncell_add_fig(fig05_quality_performance)
nncell_add_fig(fig07_search_vs_dimension)
nncell_add_fig(fig08_speedup_over_rstar)
nncell_add_fig(fig09_pages_vs_cpu)
nncell_add_fig(fig10_dbsize_sweep)
nncell_add_fig(fig10b_overlap_scaling)
nncell_add_fig(fig11_fourier_dbsize)
nncell_add_fig(fig12_fourier_pages_cpu)
nncell_add_fig(fig13_decomposition)
nncell_add_fig(ablation_maintenance)
nncell_add_fig(extension_knn)
nncell_add_fig(model_vs_measured)
nncell_add_fig(extension_parallel)
nncell_add_fig(bench_regress)
nncell_add_fig(bench_recall)
nncell_add_fig(bench_simd)
target_link_libraries(model_vs_measured PRIVATE nncell_model)

add_executable(loadgen ${CMAKE_SOURCE_DIR}/bench/loadgen.cc)
target_include_directories(loadgen PRIVATE ${CMAKE_SOURCE_DIR}/src)
target_link_libraries(loadgen PRIVATE nncell_server_lib)
set_target_properties(loadgen PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${NNCELL_BENCH_BINDIR})

foreach(micro micro_lp micro_trees micro_metrics micro_persistence micro_distance)
  add_executable(${micro} ${CMAKE_SOURCE_DIR}/bench/${micro}.cc)
  target_include_directories(${micro} PRIVATE ${CMAKE_SOURCE_DIR})
  set_target_properties(${micro} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${NNCELL_BENCH_BINDIR})
endforeach()
target_link_libraries(micro_lp PRIVATE nncell_geom nncell_lp benchmark::benchmark)
target_link_libraries(micro_trees PRIVATE nncell_data nncell_rstar nncell_xtree benchmark::benchmark)
target_link_libraries(micro_metrics PRIVATE nncell_geom nncell_lp benchmark::benchmark)
target_link_libraries(micro_persistence PRIVATE nncell_core nncell_data benchmark::benchmark)
target_link_libraries(micro_distance PRIVATE nncell_common benchmark::benchmark)
