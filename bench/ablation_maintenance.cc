// Ablation (DESIGN.md): dynamic-maintenance policy after inserts. The
// paper proposes a sphere query to find the cells a new point shrinks; we
// additionally implement the exact bisector test and "no maintenance"
// (still correct -- stale approximations are supersets -- but overlapping).
// This bench quantifies the quality/build-time trade-off.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 4;
  const size_t n = Scaled(400, config.scale, 50);
  PointSet pts = GenerateUniform(n, dim, config.seed);
  PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ 1);

  std::printf(
      "Ablation: dynamic maintenance modes, d=%zu, N=%zu uniform points\n\n",
      dim, n);
  Table table({"mode", "build[s]", "recomputed", "overlap", "query[ms]"});
  struct Case {
    MaintenanceMode mode;
    const char* name;
  };
  for (const Case& c :
       {Case{MaintenanceMode::kNone, "none"},
        Case{MaintenanceMode::kSphere, "sphere"},
        Case{MaintenanceMode::kExact, "exact"}}) {
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    opts.maintenance = c.mode;
    // Maintenance only runs on the dynamic insert path, so build the index
    // point by point instead of with the static BulkBuild.
    NNCellSetup setup;
    setup.file = std::make_unique<PageFile>(config.page_size);
    setup.pool =
        std::make_unique<BufferPool>(setup.file.get(), config.cache_pages);
    setup.index =
        std::make_unique<NNCellIndex>(setup.pool.get(), dim, opts);
    Stopwatch timer;
    for (size_t i = 0; i < pts.size(); ++i) {
      auto id = setup.index->Insert(pts.Get(i));
      NNCELL_CHECK(id.ok() ||
                   id.status().code() == StatusCode::kAlreadyExists);
    }
    setup.build_seconds = timer.ElapsedSeconds();
    QueryCost cost = MeasureNNCellQueries(setup, queries, config);
    table.AddRow({c.name, Table::Num(setup.build_seconds, 2),
                  Table::Int(setup.index->build_stats().cells_recomputed),
                  Table::Num(setup.index->ExpectedCandidates(), 2),
                  Table::Num(cost.total_ms, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
