// Microbenchmarks of the index substrates: R*-tree / X-tree inserts and NN
// queries, plus the X-tree supernode-budget ablation called out in
// DESIGN.md.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/generators.h"
#include "rstar/rstar_tree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"
#include "xtree/xtree.h"

namespace nncell {
namespace {

template <typename TreeT>
void BM_TreeInsert(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniform(2000, dim, 7);
  for (auto _ : state) {
    state.PauseTiming();
    PageFile file(4096);
    BufferPool pool(&file, 4096);
    TreeOptions opts;
    opts.dim = dim;
    TreeT tree(&pool, opts);
    state.ResumeTiming();
    for (size_t i = 0; i < pts.size(); ++i) {
      tree.Insert(HyperRect::FromPoint(pts[i], dim), i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * pts.size());
}
BENCHMARK(BM_TreeInsert<RStarTree>)->Arg(4)->Arg(16);
BENCHMARK(BM_TreeInsert<XTree>)->Arg(4)->Arg(16);

template <typename TreeT>
void BM_TreeKnn(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  PointSet pts = GenerateUniform(5000, dim, 9);
  PageFile file(4096);
  BufferPool pool(&file, 8192);
  TreeOptions opts;
  opts.dim = dim;
  TreeT tree(&pool, opts);
  for (size_t i = 0; i < pts.size(); ++i) {
    tree.Insert(HyperRect::FromPoint(pts[i], dim), i);
  }
  PointSet queries = GenerateQueries(64, dim, 11);
  size_t qi = 0;
  for (auto _ : state) {
    auto r = tree.KnnQuery(queries[qi % queries.size()], 1);
    benchmark::DoNotOptimize(r.front().dist);
    ++qi;
  }
}
BENCHMARK(BM_TreeKnn<RStarTree>)->Arg(4)->Arg(16);
BENCHMARK(BM_TreeKnn<XTree>)->Arg(4)->Arg(16);

// Ablation: X-tree supernode page budget on overlapping high-d rectangles.
void BM_XTreeSupernodeBudget(benchmark::State& state) {
  const size_t budget = static_cast<size_t>(state.range(0));
  const size_t dim = 10;
  Rng rng(13);
  std::vector<HyperRect> rects;
  for (int i = 0; i < 1200; ++i) {
    std::vector<double> lo(dim), hi(dim);
    for (size_t k = 0; k < dim; ++k) {
      double c = rng.NextDouble();
      double w = rng.NextDouble(0.1, 0.5);
      lo[k] = std::max(0.0, c - w);
      hi[k] = std::min(1.0, c + w);
    }
    rects.emplace_back(lo, hi);
  }
  PointSet queries = GenerateQueries(32, dim, 15);
  for (auto _ : state) {
    state.PauseTiming();
    PageFile file(4096);
    BufferPool pool(&file, 8192);
    TreeOptions opts;
    opts.dim = dim;
    opts.max_supernode_pages = budget;
    XTree tree(&pool, opts);
    for (size_t i = 0; i < rects.size(); ++i) tree.Insert(rects[i], i);
    state.ResumeTiming();
    uint64_t pages = 0;
    for (size_t q = 0; q < queries.size(); ++q) {
      pool.DropCache();
      pool.ResetStats();
      auto hits = tree.PointQuery(queries[q]);
      benchmark::DoNotOptimize(hits.size());
      pages += pool.stats().physical_reads;
    }
    state.counters["pages_per_query"] = benchmark::Counter(
        static_cast<double>(pages) / static_cast<double>(queries.size()));
  }
}
BENCHMARK(BM_XTreeSupernodeBudget)->Arg(1)->Arg(4)->Arg(32);

}  // namespace
}  // namespace nncell

BENCHMARK_MAIN();
