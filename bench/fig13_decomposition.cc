// Figure 13 of the paper: effect of decomposing the NN-cell approximations
// (Section 3) on the overlap, using the exact (Correct) approximation
// algorithm, for d = 4, 8, 12. Includes a partition-budget ablation
// (k = 1 is the undecomposed "exact" case the paper compares against).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::vector<size_t> dims = {4, 8, 12};
  const std::vector<size_t> budgets = {1, 2, 4, 8, 10};
  const size_t n = Scaled(150, config.scale, 20);

  std::printf(
      "Figure 13: overlap of exact vs decomposed approximations\n"
      "(Correct algorithm, N=%zu clustered points; k=1 is 'exact')\n\n",
      n);
  std::vector<std::string> header = {"dim"};
  for (size_t k : budgets) header.push_back("k=" + std::to_string(k));
  header.push_back("improve[%]");
  Table table(header);

  for (size_t dim : dims) {
    PointSet pts = GenerateClusters(n, dim, 4, 0.08, config.seed + dim);
    std::vector<std::string> row = {Table::Int(dim)};
    double exact_overlap = 0.0, best_overlap = 1e300;
    for (size_t k : budgets) {
      NNCellOptions opts;
      opts.algorithm = ApproxAlgorithm::kCorrect;
      opts.decomposition.max_partitions = k;
      opts.decomposition.max_split_dims = 3;
      NNCellSetup setup = BuildNNCell(pts, opts, config);
      double overlap = setup.index->ExpectedCandidates();
      row.push_back(Table::Num(overlap, 2));
      if (k == 1) exact_overlap = overlap;
      best_overlap = std::min(best_overlap, overlap);
    }
    double improvement = 100.0 * (exact_overlap - best_overlap) /
                         std::max(exact_overlap, 1e-12);
    row.push_back(Table::Num(improvement, 1));
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
