#include "bench/bench_util.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/metrics.h"
#include "common/metrics_names.h"
#include "common/stopwatch.h"

namespace nncell {
namespace bench {

BenchConfig ParseArgs(int argc, char** argv) {
  BenchConfig config;
  if (const char* env = std::getenv("NNCELL_BENCH_SCALE")) {
    config.scale = std::atof(env);
    if (config.scale <= 0) config.scale = 1.0;
  }
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto value = [&arg](const char* prefix) -> const char* {
      size_t len = std::strlen(prefix);
      return arg.compare(0, len, prefix) == 0 ? arg.c_str() + len : nullptr;
    };
    if (const char* v = value("--scale=")) {
      config.scale = std::atof(v);
    } else if (const char* v = value("--queries=")) {
      config.queries = std::strtoul(v, nullptr, 10);
    } else if (const char* v = value("--latency-ms=")) {
      config.page_latency_ms = std::atof(v);
    } else if (const char* v = value("--cpu-scale=")) {
      config.cpu_scale = std::atof(v);
    } else if (const char* v = value("--seed=")) {
      config.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--threads=")) {
      config.threads = std::strtoul(v, nullptr, 10);
    } else if (arg == "--warm") {
      config.cold_queries = false;
    } else if (arg == "--help") {
      std::printf(
          "flags: --scale=F --queries=N --latency-ms=F --cpu-scale=F "
          "--seed=N --threads=N --warm\n");
      std::exit(0);
    }
  }
  if (config.scale <= 0) config.scale = 1.0;
  if (config.queries == 0) config.queries = 1;
  return config;
}

size_t Scaled(size_t base, double scale, size_t min) {
  auto v = static_cast<size_t>(static_cast<double>(base) * scale);
  return v < min ? min : v;
}

Table::Table(std::vector<std::string> header, int width)
    : header_(std::move(header)), width_(width) {}

void Table::AddRow(const std::vector<std::string>& cells) {
  rows_.push_back(cells);
}

void Table::Print() const {
  for (const auto& h : header_) std::printf("%-*s", width_, h.c_str());
  std::printf("\n");
  for (size_t i = 0; i < header_.size(); ++i) {
    for (int c = 0; c < width_ - 2; ++c) std::printf("-");
    std::printf("  ");
  }
  std::printf("\n");
  for (const auto& row : rows_) {
    for (const auto& cell : row) std::printf("%-*s", width_, cell.c_str());
    std::printf("\n");
  }
  std::printf("\n");
}

std::string Table::Num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::Int(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

NNCellSetup BuildNNCell(const PointSet& pts, NNCellOptions options,
                        const BenchConfig& config) {
  NNCellSetup setup;
  setup.file = std::make_unique<PageFile>(config.page_size);
  setup.pool = std::make_unique<BufferPool>(setup.file.get(),
                                            config.cache_pages);
  options.parallel.num_threads = config.threads;
  setup.index =
      std::make_unique<NNCellIndex>(setup.pool.get(), pts.dim(), options);
  Stopwatch timer;
  Status st = setup.index->BulkBuild(pts);
  NNCELL_CHECK_MSG(st.ok(), st.ToString().c_str());
  setup.build_seconds = timer.ElapsedSeconds();
  return setup;
}

PointTreeSetup BuildPointTree(const PointSet& pts, bool use_xtree,
                              const BenchConfig& config) {
  PointTreeSetup setup;
  setup.file = std::make_unique<PageFile>(config.page_size);
  setup.pool = std::make_unique<BufferPool>(setup.file.get(),
                                            config.cache_pages);
  TreeOptions opts;
  opts.dim = pts.dim();
  if (use_xtree) {
    setup.tree = std::make_unique<XTree>(setup.pool.get(), opts);
  } else {
    setup.tree = std::make_unique<RStarTree>(setup.pool.get(), opts);
  }
  Stopwatch timer;
  for (size_t i = 0; i < pts.size(); ++i) {
    setup.tree->Insert(HyperRect::FromPoint(pts[i], pts.dim()), i);
  }
  setup.build_seconds = timer.ElapsedSeconds();
  return setup;
}

QueryCost MeasureNNCellQueries(const NNCellSetup& setup,
                               const PointSet& queries,
                               const BenchConfig& config) {
  QueryCost cost;
  uint64_t pages = 0;
  double cpu_s = 0.0;
  double candidates = 0.0;
  // Work counters come from the metrics registry as a before/after delta
  // over the whole run. The per-site cost while enabled is one relaxed
  // fetch_add, small against an LP-free point query; still, deltas are
  // taken outside the timed region and the previous enabled state is
  // restored afterwards so benchmarks compose.
  metrics::Registry& registry = metrics::Registry::Global();
  metrics::Counter* visits = registry.counter(metrics::kIndexNodeVisits);
  metrics::Counter* dists =
      registry.counter(metrics::kQueryDistanceComputations);
  const bool was_enabled = metrics::Registry::Enabled();
  metrics::Registry::SetEnabled(true);
  const uint64_t visits_before = visits->Value();
  const uint64_t dists_before = dists->Value();
  for (size_t i = 0; i < queries.size(); ++i) {
    if (config.cold_queries) setup.pool->DropCache();
    setup.pool->ResetStats();
    Stopwatch timer;
    auto r = setup.index->Query(queries[i]);
    cpu_s += timer.ElapsedSeconds();
    NNCELL_CHECK(r.ok());
    pages += setup.pool->stats().physical_reads;
    candidates += static_cast<double>(r->candidates);
  }
  const uint64_t visit_delta = visits->Value() - visits_before;
  const uint64_t dist_delta = dists->Value() - dists_before;
  metrics::Registry::SetEnabled(was_enabled);
  double n = static_cast<double>(queries.size());
  cost.cpu_ms = cpu_s * 1e3 / n;
  cost.page_accesses = static_cast<double>(pages) / n;
  cost.total_ms = cost.cpu_ms * config.cpu_scale +
                  cost.page_accesses * config.page_latency_ms;
  cost.candidates = candidates / n;
  cost.node_visits = static_cast<double>(visit_delta) / n;
  cost.distance_calcs = static_cast<double>(dist_delta) / n;
  return cost;
}

QueryCost MeasurePointTreeNN(const PointTreeSetup& setup,
                             const PointSet& queries,
                             const BenchConfig& config) {
  QueryCost cost;
  uint64_t pages = 0;
  double cpu_s = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    if (config.cold_queries) setup.pool->DropCache();
    setup.pool->ResetStats();
    Stopwatch timer;
    auto r = setup.tree->NnBranchAndBound(queries[i]);
    cpu_s += timer.ElapsedSeconds();
    NNCELL_CHECK(r.has_value());
    pages += setup.pool->stats().physical_reads;
  }
  double n = static_cast<double>(queries.size());
  cost.cpu_ms = cpu_s * 1e3 / n;
  cost.page_accesses = static_cast<double>(pages) / n;
  cost.total_ms = cost.cpu_ms * config.cpu_scale +
                  cost.page_accesses * config.page_latency_ms;
  return cost;
}

ApproxAlgorithm RecommendedAlgorithm(size_t dim) {
  return dim <= 8 ? ApproxAlgorithm::kSphere : ApproxAlgorithm::kNNDirection;
}

}  // namespace bench
}  // namespace nncell
