// Extension bench (paper Section 5 future work): k-nearest-neighbor
// search on the NN-cell index via ball queries over the cell
// approximations, against the X-tree best-first kNN.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 6;
  const size_t n = Scaled(1500, config.scale, 100);
  PointSet pts = GenerateUniform(n, dim, config.seed);
  PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ 9);

  NNCellOptions opts;
  opts.algorithm = ApproxAlgorithm::kSphere;
  NNCellSetup nncell = BuildNNCell(pts, opts, config);
  PointTreeSetup xtree = BuildPointTree(pts, true, config);

  std::printf(
      "Extension: k-NN on the NN-cell index vs X-tree best-first kNN,\n"
      "d=%zu, N=%zu uniform, %zu cold queries\n\n",
      dim, n, config.queries);
  Table table({"k", "NNcell[ms]", "NNcell-pages", "X-tree[ms]", "X-pages"});
  for (size_t k : {1u, 5u, 10u, 20u, 50u}) {
    double cell_ms = 0.0, x_ms = 0.0;
    uint64_t cell_pages = 0, x_pages = 0;
    for (size_t t = 0; t < queries.size(); ++t) {
      if (config.cold_queries) nncell.pool->DropCache();
      nncell.pool->ResetStats();
      Stopwatch t1;
      auto r = nncell.index->KnnQuery(queries[t], k);
      cell_ms += t1.ElapsedMillis();
      NNCELL_CHECK(r.ok());
      cell_pages += nncell.pool->stats().physical_reads;

      if (config.cold_queries) xtree.pool->DropCache();
      xtree.pool->ResetStats();
      Stopwatch t2;
      auto xr = xtree.tree->KnnQuery(queries[t], k);
      x_ms += t2.ElapsedMillis();
      NNCELL_CHECK(xr.size() == std::min(k, n));
      x_pages += xtree.pool->stats().physical_reads;
    }
    double nq = static_cast<double>(queries.size());
    table.AddRow({Table::Int(k), Table::Num(cell_ms / nq, 3),
                  Table::Num(static_cast<double>(cell_pages) / nq, 1),
                  Table::Num(x_ms / nq, 3),
                  Table::Num(static_cast<double>(x_pages) / nq, 1)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
