// Theory check (paper Section 1 / [BBKK 97]): the analytic cost model
// predicts that any data-partitioning index must touch a growing fraction
// of the database as the dimension rises. This bench prints the model's
// prediction next to the measured R*-tree NN page accesses -- the
// motivation for precomputing the solution space.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "model/cost_model.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t n = Scaled(2000, config.scale, 100);
  std::printf(
      "[BBKK 97] cost model vs measured R*-tree NN search, N=%zu uniform\n\n",
      n);
  Table table({"dim", "model-r_nn", "model-pages", "measured", "fraction"});
  for (size_t dim : {2u, 4u, 6u, 8u, 10u, 12u, 14u, 16u}) {
    PointSet pts = GenerateUniform(n, dim, config.seed + dim);
    PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ dim);
    PointTreeSetup rstar = BuildPointTree(pts, false, config);
    QueryCost cost = MeasurePointTreeNN(rstar, queries, config);
    auto info = rstar.tree->Info();
    size_t c_eff = std::max<size_t>(1, n / std::max<size_t>(1, info.num_leaves));
    double model_pages = ExpectedNNPageAccesses(n, dim, c_eff);
    table.AddRow({Table::Int(dim),
                  Table::Num(ExpectedNNDistance(n, dim), 3),
                  Table::Num(model_pages, 1),
                  Table::Num(cost.page_accesses, 1),
                  Table::Num(cost.page_accesses /
                                 static_cast<double>(info.total_pages),
                             3)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
