// Figure 12 of the paper: page accesses versus CPU time on the Fourier
// database. On real (clustered) data, the NN-cell approach beats the
// X-tree in *both* categories because the cell approximations are tighter
// than on uniform data.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 8;
  std::vector<size_t> sizes;
  for (size_t base : {250, 500, 1000, 2000}) {
    sizes.push_back(Scaled(base, config.scale, 50));
  }

  std::printf(
      "Figure 12: page accesses vs CPU time on Fourier data (d=%zu),\n"
      "%zu cold NN queries\n\n",
      dim, config.queries);
  Table pages({"N", "X-pages", "NNcell-pages"});
  Table cpu({"N", "X-cpu[ms]", "NNcell-cpu[ms]"});
  for (size_t n : sizes) {
    PointSet pts = GenerateFourier(n, dim, config.seed + n);
    // Similarity-search queries are feature vectors themselves: sample
    // them from the same (Fourier) distribution, not uniform space.
    PointSet queries = GenerateFourier(config.queries, dim, config.seed ^ n);

    PointTreeSetup xtree = BuildPointTree(pts, true, config);
    QueryCost x = MeasurePointTreeNN(xtree, queries, config);
    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    NNCellSetup nncell = BuildNNCell(pts, opts, config);
    QueryCost c = MeasureNNCellQueries(nncell, queries, config);

    pages.AddRow({Table::Int(n), Table::Num(x.page_accesses, 1),
                  Table::Num(c.page_accesses, 1)});
    cpu.AddRow({Table::Int(n), Table::Num(x.cpu_ms, 3),
                Table::Num(c.cpu_ms, 3)});
  }
  std::printf("(a) Page accesses per query\n");
  pages.Print();
  std::printf("(b) CPU time per query [ms]\n");
  cpu.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
