// Microbenchmarks proving the metrics layer's cost model (see
// common/metrics.h): a disabled instrumentation site is one relaxed load
// plus a predictable branch, an enabled site one relaxed fetch_add on a
// thread-striped cache line. The headline pair is BM_CellMbrPipeline with
// metrics off vs on -- the acceptance gate is that the disabled run is
// within noise (<= 1%) of the same pipeline before instrumentation
// existed, which follows from the disabled-site cost measured here.

#include <benchmark/benchmark.h>

#include "common/metrics.h"
#include "common/metrics_names.h"
#include "common/rng.h"
#include "geom/cell_approximator.h"

namespace nncell {
namespace {

// Raw per-site cost, runtime-disabled: the guard branch only.
void BM_CounterAddDisabled(benchmark::State& state) {
  metrics::Registry::SetEnabled(false);
  [[maybe_unused]] metrics::Counter* c =
      metrics::Registry::Global().counter(metrics::kQueryCount);
  for (auto _ : state) {
    NNCELL_METRIC_COUNT(c, 1);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CounterAddDisabled);

// Raw per-site cost, enabled: guard + relaxed fetch_add on this thread's
// stripe.
void BM_CounterAddEnabled(benchmark::State& state) {
  metrics::Registry::SetEnabled(true);
  [[maybe_unused]] metrics::Counter* c =
      metrics::Registry::Global().counter(metrics::kQueryCount);
  for (auto _ : state) {
    NNCELL_METRIC_COUNT(c, 1);
    benchmark::ClobberMemory();
  }
  metrics::Registry::SetEnabled(false);
}
BENCHMARK(BM_CounterAddEnabled);

// Enabled counter under thread contention: stripes keep threads apart.
void BM_CounterAddEnabledThreaded(benchmark::State& state) {
  if (state.thread_index() == 0) metrics::Registry::SetEnabled(true);
  [[maybe_unused]] metrics::Counter* c =
      metrics::Registry::Global().counter(metrics::kQueryCount);
  for (auto _ : state) {
    NNCELL_METRIC_COUNT(c, 1);
  }
  if (state.thread_index() == 0) metrics::Registry::SetEnabled(false);
}
BENCHMARK(BM_CounterAddEnabledThreaded)->Threads(4);

void BM_HistogramRecordEnabled(benchmark::State& state) {
  metrics::Registry::SetEnabled(true);
  [[maybe_unused]] metrics::Histogram* h =
      metrics::Registry::Global().histogram(metrics::kQueryCandidatesPerQuery);
  uint64_t v = 1;
  for (auto _ : state) {
    NNCELL_METRIC_RECORD(h, v);
    v = (v * 7 + 3) & 0xfff;
  }
  metrics::Registry::SetEnabled(false);
}
BENCHMARK(BM_HistogramRecordEnabled);

// The instrumented production hot path (identical setup to micro_lp's
// BM_CellMbrPipeline, optimized knobs on), with the registry runtime-off
// (arg 0) vs runtime-on (arg 1). Comparing the two rows bounds the full
// instrumentation overhead of the LP pipeline end to end.
void BM_CellMbrPipeline(benchmark::State& state) {
  const size_t dim = 8;
  const size_t n = 500;
  metrics::Registry::SetEnabled(state.range(0) != 0);
  Rng rng(1234);
  PointSet pts(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  CellApproxOptions opts;
  opts.prune_bisectors = true;
  opts.warm_start = true;
  CellApproximator approx(dim, HyperRect::UnitCube(dim), LpOptions(), opts);
  ApproxStats stats;
  size_t owner = 0;
  std::vector<const double*> others;
  for (auto _ : state) {
    others.clear();
    for (size_t i = 0; i < n; ++i) {
      if (i != owner) others.push_back(pts[i]);
    }
    HyperRect mbr = approx.ApproximateMbr(pts[owner], others, &stats);
    benchmark::DoNotOptimize(mbr);
    owner = (owner + 1) % n;
  }
  metrics::Registry::SetEnabled(false);
}
BENCHMARK(BM_CellMbrPipeline)->Arg(0)->Arg(1);

// Snapshot/export cost: never on a hot path, but tooling calls it per
// stats invocation so it should stay in the microsecond range.
void BM_SnapshotJson(benchmark::State& state) {
  for (auto _ : state) {
    std::string json = metrics::Registry::Global().SnapshotJson();
    benchmark::DoNotOptimize(json.data());
  }
}
BENCHMARK(BM_SnapshotJson);

}  // namespace
}  // namespace nncell

BENCHMARK_MAIN();
