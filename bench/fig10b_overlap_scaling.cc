// Companion to Fig. 10: the paper claims the NN-cell approach "shows a
// logarithmic behavior in the number of database tuples". The driver of
// that claim is the overlap (expected candidate cells per query): with
// Correct-quality approximations it grows only logarithmically in N while
// the R*/X-tree NN search keeps touching more pages. This bench prints
// the overlap scaling for the Sphere (~Correct quality) and NN-Direction
// builds at d=8.

#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 8;
  std::vector<size_t> sizes;
  for (size_t base : {500, 1000, 2000, 4000}) {
    sizes.push_back(Scaled(base, config.scale, 50));
  }

  std::printf(
      "Fig. 10 companion: overlap (expected candidates) vs N at d=%zu.\n"
      "Log-like growth for Sphere (~Correct quality) carries the paper's\n"
      "claim that NN-cell search scales logarithmically in N.\n\n",
      dim);
  Table table({"N", "Sphere", "Sphere/logN", "NN-Direction", "build-S[s]"});
  for (size_t n : sizes) {
    PointSet pts = GenerateUniform(n, dim, config.seed + n);

    NNCellOptions sphere;
    sphere.algorithm = ApproxAlgorithm::kSphere;
    NNCellSetup s = BuildNNCell(pts, sphere, config);

    NNCellOptions nndir;
    nndir.algorithm = ApproxAlgorithm::kNNDirection;
    NNCellSetup d = BuildNNCell(pts, nndir, config);

    double overlap = s.index->ExpectedCandidates();
    table.AddRow({Table::Int(n), Table::Num(overlap, 1),
                  Table::Num(overlap / std::log(static_cast<double>(n)), 2),
                  Table::Num(d.index->ExpectedCandidates(), 1),
                  Table::Num(s.build_seconds, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
