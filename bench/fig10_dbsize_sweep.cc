// Figure 10 of the paper: total search time / page accesses / CPU time as
// a function of the database size at d=10 (uniform data). The NN-cell
// approach shows logarithmic behaviour in N.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 10;
  std::vector<size_t> sizes;
  for (size_t base : {500, 1000, 2000, 4000}) {
    sizes.push_back(Scaled(base, config.scale, 50));
  }

  std::printf(
      "Figure 10: total search time vs database size, d=%zu uniform,\n"
      "%zu cold NN queries\n\n",
      dim, config.queries);
  Table total({"N", "R*[ms]", "X-tree[ms]", "NN-cell[ms]"});
  Table pages({"N", "R*-pages", "X-pages", "NNcell-pages"});
  Table cpu({"N", "R*-cpu[ms]", "X-cpu[ms]", "NNcell-cpu[ms]"});
  for (size_t n : sizes) {
    PointSet pts = GenerateUniform(n, dim, config.seed + n);
    PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ n);

    PointTreeSetup rstar = BuildPointTree(pts, false, config);
    QueryCost r = MeasurePointTreeNN(rstar, queries, config);
    PointTreeSetup xtree = BuildPointTree(pts, true, config);
    QueryCost x = MeasurePointTreeNN(xtree, queries, config);
    NNCellOptions opts;
    opts.algorithm = RecommendedAlgorithm(dim);
    NNCellSetup nncell = BuildNNCell(pts, opts, config);
    QueryCost c = MeasureNNCellQueries(nncell, queries, config);

    total.AddRow({Table::Int(n), Table::Num(r.total_ms, 2),
                  Table::Num(x.total_ms, 2), Table::Num(c.total_ms, 2)});
    pages.AddRow({Table::Int(n), Table::Num(r.page_accesses, 1),
                  Table::Num(x.page_accesses, 1),
                  Table::Num(c.page_accesses, 1)});
    cpu.AddRow({Table::Int(n), Table::Num(r.cpu_ms, 3),
                Table::Num(x.cpu_ms, 3), Table::Num(c.cpu_ms, 3)});
  }
  std::printf("Total search time [ms]\n");
  total.Print();
  std::printf("(a) Page accesses per query\n");
  pages.Print();
  std::printf("(b) CPU time per query [ms]\n");
  cpu.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
