// Figure 11 of the paper: total search time on real data (Fourier points,
// d=8) depending on the database size -- NN-cell approach vs. X-tree (the
// R*-tree was dropped because the X-tree consistently won). The paper
// reports NN-cell speed-ups of up to 250% here.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 8;
  std::vector<size_t> sizes;
  for (size_t base : {250, 500, 1000, 2000}) {
    sizes.push_back(Scaled(base, config.scale, 50));
  }

  std::printf(
      "Figure 11: total search time on Fourier data (d=%zu),\n"
      "%zu cold NN queries (synthetic Fourier substitute, see DESIGN.md)\n\n",
      dim, config.queries);
  Table table({"N", "X-tree[ms]", "NN-cell[ms]", "speedup[%]"});
  for (size_t n : sizes) {
    PointSet pts = GenerateFourier(n, dim, config.seed + n);
    // Similarity-search queries are feature vectors themselves: sample
    // them from the same (Fourier) distribution, not uniform space.
    PointSet queries = GenerateFourier(config.queries, dim, config.seed ^ n);

    PointTreeSetup xtree = BuildPointTree(pts, true, config);
    QueryCost x = MeasurePointTreeNN(xtree, queries, config);

    NNCellOptions opts;
    opts.algorithm = ApproxAlgorithm::kSphere;
    NNCellSetup nncell = BuildNNCell(pts, opts, config);
    QueryCost c = MeasureNNCellQueries(nncell, queries, config);

    double speedup = 100.0 * x.total_ms / std::max(c.total_ms, 1e-9);
    table.AddRow({Table::Int(n), Table::Num(x.total_ms, 2),
                  Table::Num(c.total_ms, 2), Table::Num(speedup, 0)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
