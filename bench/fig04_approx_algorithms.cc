// Figure 4 of the paper: comparison of the four approximation algorithms
// (Correct, Point, Sphere, NN-Direction).
//   (a) Performance: time to compute the approximations (== insertion
//       time), per dimension.
//   (b) Quality: overlap of the approximations (expected candidate cells
//       per point query), per dimension.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::vector<size_t> dims = {4, 8, 12, 16};
  const std::vector<ApproxAlgorithm> algorithms = {
      ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
      ApproxAlgorithm::kSphere, ApproxAlgorithm::kNNDirection};
  const size_t n = Scaled(250, config.scale, 20);

  std::printf("Figure 4: approximation algorithms, N=%zu uniform points\n\n",
              n);
  Table perf({"dim", "Correct", "Point", "Sphere", "NN-Direction"});
  Table quality({"dim", "Correct", "Point", "Sphere", "NN-Direction"});

  for (size_t dim : dims) {
    PointSet pts = GenerateUniform(n, dim, config.seed + dim);
    std::vector<std::string> perf_row = {Table::Int(dim)};
    std::vector<std::string> quality_row = {Table::Int(dim)};
    for (ApproxAlgorithm alg : algorithms) {
      NNCellOptions opts;
      opts.algorithm = alg;
      NNCellSetup setup = BuildNNCell(pts, opts, config);
      perf_row.push_back(Table::Num(setup.build_seconds, 3));
      quality_row.push_back(Table::Num(setup.index->ExpectedCandidates(), 2));
    }
    perf.AddRow(perf_row);
    quality.AddRow(quality_row);
  }

  std::printf("(a) Performance: total approximation time [s]\n");
  perf.Print();
  std::printf("(b) Quality: overlap (expected candidate cells per query)\n");
  quality.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
