// Extension bench: declustered parallel I/O, the alternative cure for the
// dimensionality curse the paper cites ([Ber+ 97], "exploiting parallelism
// for an efficient nearest neighbor search"). Pages are spread round-robin
// over D simulated disks; a query's parallel I/O time is the *maximum*
// per-disk read count. Both the R*-tree NN search and the NN-cell point
// query parallelize well, because their page sets are spread across the
// whole file.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const size_t dim = 10;
  const size_t n = Scaled(1500, config.scale, 100);
  PointSet pts = GenerateUniform(n, dim, config.seed);
  PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ 3);

  PointTreeSetup rstar = BuildPointTree(pts, false, config);
  NNCellOptions opts;
  opts.algorithm = RecommendedAlgorithm(dim);
  NNCellSetup nncell = BuildNNCell(pts, opts, config);

  std::printf(
      "Extension: declustered parallel NN search [Ber+ 97], d=%zu, N=%zu\n"
      "parallel I/O depth = max per-disk page reads per query (cold)\n\n",
      dim, n);
  Table table({"disks", "R*-depth", "R*-speedup", "NNcell-depth",
               "NNcell-speedup"});
  double r_base = 0.0, c_base = 0.0;
  for (size_t disks : {1u, 2u, 4u, 8u, 16u}) {
    rstar.file->SetDeclustering(disks);
    nncell.file->SetDeclustering(disks);
    uint64_t r_depth = 0, c_depth = 0;
    for (size_t t = 0; t < queries.size(); ++t) {
      rstar.pool->DropCache();
      rstar.file->ResetStats();
      auto rr = rstar.tree->NnBranchAndBound(queries[t]);
      NNCELL_CHECK(rr.has_value());
      r_depth += rstar.file->MaxDiskReads();

      nncell.pool->DropCache();
      nncell.file->ResetStats();
      auto cr = nncell.index->Query(queries[t]);
      NNCELL_CHECK(cr.ok());
      c_depth += nncell.file->MaxDiskReads();
    }
    double nq = static_cast<double>(queries.size());
    double r_avg = static_cast<double>(r_depth) / nq;
    double c_avg = static_cast<double>(c_depth) / nq;
    if (disks == 1) {
      r_base = r_avg;
      c_base = c_avg;
    }
    table.AddRow({Table::Int(disks), Table::Num(r_avg, 1),
                  Table::Num(r_base / std::max(r_avg, 1e-9), 2),
                  Table::Num(c_avg, 1),
                  Table::Num(c_base / std::max(c_avg, 1e-9), 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
