// Extension bench: the two faces of parallelism for NN search.
//
// 1. Declustered parallel I/O -- the alternative cure for the
//    dimensionality curse the paper cites ([Ber+ 97], "exploiting
//    parallelism for an efficient nearest neighbor search"). Pages are
//    spread round-robin over D simulated disks; a query's parallel I/O
//    time is the *maximum* per-disk read count. Both the R*-tree NN
//    search and the NN-cell point query parallelize well, because their
//    page sets are spread across the whole file.
//
// 2. Real thread scaling of this engine: wall-clock speedup of the
//    multi-threaded bulk build (the per-point LP solves fan across a
//    work-stealing pool; the committed index is byte-identical to a
//    serial build) and of batched queries (QueryBatch = N concurrent
//    readers over the shared buffer pool). Measured speedups are bounded
//    by the machine's core count -- on a single-core container every
//    thread count degenerates to ~1x.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "common/thread_pool.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void RunDeclustering(const BenchConfig& config) {
  const size_t dim = 10;
  const size_t n = Scaled(1500, config.scale, 100);
  PointSet pts = GenerateUniform(n, dim, config.seed);
  PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ 3);

  PointTreeSetup rstar = BuildPointTree(pts, false, config);
  NNCellOptions opts;
  opts.algorithm = RecommendedAlgorithm(dim);
  NNCellSetup nncell = BuildNNCell(pts, opts, config);

  std::printf(
      "Extension A: declustered parallel NN search [Ber+ 97], d=%zu, N=%zu\n"
      "parallel I/O depth = max per-disk page reads per query (cold)\n\n",
      dim, n);
  Table table({"disks", "R*-depth", "R*-speedup", "NNcell-depth",
               "NNcell-speedup"});
  double r_base = 0.0, c_base = 0.0;
  for (size_t disks : {1u, 2u, 4u, 8u, 16u}) {
    rstar.file->SetDeclustering(disks);
    nncell.file->SetDeclustering(disks);
    uint64_t r_depth = 0, c_depth = 0;
    for (size_t t = 0; t < queries.size(); ++t) {
      rstar.pool->DropCache();
      rstar.file->ResetStats();
      auto rr = rstar.tree->NnBranchAndBound(queries[t]);
      NNCELL_CHECK(rr.has_value());
      r_depth += rstar.file->MaxDiskReads();

      nncell.pool->DropCache();
      nncell.file->ResetStats();
      auto cr = nncell.index->Query(queries[t]);
      NNCELL_CHECK(cr.ok());
      c_depth += nncell.file->MaxDiskReads();
    }
    double nq = static_cast<double>(queries.size());
    double r_avg = static_cast<double>(r_depth) / nq;
    double c_avg = static_cast<double>(c_depth) / nq;
    if (disks == 1) {
      r_base = r_avg;
      c_base = c_avg;
    }
    table.AddRow({Table::Int(disks), Table::Num(r_avg, 1),
                  Table::Num(r_base / std::max(r_avg, 1e-9), 2),
                  Table::Num(c_avg, 1),
                  Table::Num(c_base / std::max(c_avg, 1e-9), 2)});
  }
  table.Print();
}

void RunThreadScaling(const BenchConfig& config) {
  // The paper's hard regime: d=16, where the LP solves dominate the build
  // and every query touches many candidate cells.
  const size_t dim = 16;
  const size_t n = Scaled(600, config.scale, 100);
  const size_t num_queries = std::max<size_t>(config.queries * 4, 64);
  PointSet pts = GenerateUniform(n, dim, config.seed);
  PointSet queries = GenerateQueries(num_queries, dim, config.seed ^ 7);

  std::printf(
      "Extension B: real thread scaling, d=%zu, N=%zu, batch=%zu queries "
      "(%zu hardware cores)\n"
      "build = wall-clock BulkBuild; batch throughput = warm QueryBatch\n\n",
      dim, n, num_queries, ThreadPool::DefaultThreads());
  Table table({"threads", "build-s", "build-spdup", "batch-q/s",
               "batch-spdup"});
  double build_base = 0.0, query_base = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    BenchConfig build_config = config;
    build_config.threads = threads;
    NNCellOptions opts;
    opts.algorithm = RecommendedAlgorithm(dim);
    NNCellSetup setup = BuildNNCell(pts, opts, build_config);

    // Warm batch: the scaling of interest is CPU concurrency over the
    // shared (sharded) buffer pool, not the simulated-disk model above.
    NNCELL_CHECK(setup.index->QueryBatch(queries).ok());  // warm the cache
    Stopwatch timer;
    auto results = setup.index->QueryBatch(queries);
    double batch_s = timer.ElapsedSeconds();
    NNCELL_CHECK(results.ok());
    double qps = static_cast<double>(num_queries) / std::max(batch_s, 1e-9);

    if (threads == 1) {
      build_base = setup.build_seconds;
      query_base = qps;
    }
    table.AddRow(
        {Table::Int(threads), Table::Num(setup.build_seconds, 3),
         Table::Num(build_base / std::max(setup.build_seconds, 1e-9), 2),
         Table::Num(qps, 0), Table::Num(qps / std::max(query_base, 1e-9), 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::BenchConfig config = nncell::bench::ParseArgs(argc, argv);
  nncell::bench::RunDeclustering(config);
  nncell::bench::RunThreadScaling(config);
  return 0;
}
