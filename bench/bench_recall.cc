// Recall-vs-latency bench for the approximate query tier
// (docs/APPROXIMATE.md): sweeps the certified-epsilon knob and the
// bounded-effort leaf-visit budget at d = {2, 8, 16} against a
// sequential-scan oracle, and emits one JSON document that
// tools/bench_recall.sh gates against the committed BENCH_recall.json.
//
// Gated fields are deterministic integers only: the recall@1 / recall@10
// hit counts of every sweep point, the exact-mode bit-identity counter
// (Query(q) vs Query(q, ApproxOptions{}) must agree on id and distance
// bits for every query) and a bit-fold checksum of the exact answers.
// Under the FP-determinism contract (docs/KERNELS.md) and the seeded
// serial build these are a pure function of the flags, so the gate is
// machine-independent. us_per_query is recorded for the human reader and
// never gated. --quick reduces only the timing reps; the counted passes
// are identical, so quick runs gate against the full baseline.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/approx.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

constexpr size_t kPoints = 2000;
constexpr size_t kQueries = 200;
constexpr size_t kRecallK = 10;
const size_t kDims[] = {2, 8, 16};
const double kEpsilons[] = {0.0, 0.01, 0.05, 0.1, 0.2, 0.5};
const uint64_t kBudgets[] = {1, 2, 4, 8, 16};

// Same order-insensitive bit-fold as bench_simd: any single-ulp drift in
// any gated double flips the fold.
uint64_t FoldBits(uint64_t acc, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  acc ^= bits + 0x9e3779b97f4a7c15ULL + (acc << 6) + (acc >> 2);
  return acc;
}

// Oracle: ids of the k nearest points by sequential scan, nearest first
// (ties by smaller id, matching the index's deterministic tie-break).
std::vector<std::vector<uint64_t>> OracleTopK(const PointSet& pts,
                                              const PointSet& queries,
                                              size_t k) {
  std::vector<std::vector<uint64_t>> oracle(queries.size());
  std::vector<std::pair<double, uint64_t>> scored(pts.size());
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    const double* q = queries[qi];
    for (size_t i = 0; i < pts.size(); ++i) {
      double d2 = 0;
      const double* p = pts[i];
      for (size_t d = 0; d < pts.dim(); ++d) {
        const double diff = p[d] - q[d];
        d2 += diff * diff;
      }
      scored[i] = {d2, static_cast<uint64_t>(i)};
    }
    std::partial_sort(scored.begin(), scored.begin() + k, scored.end());
    oracle[qi].reserve(k);
    for (size_t i = 0; i < k; ++i) oracle[qi].push_back(scored[i].second);
  }
  return oracle;
}

struct SweepPoint {
  uint64_t recall1_hits = 0;   // returned top-1 id == oracle top-1 id
  uint64_t recall10_hits = 0;  // |returned top-10 ids ∩ oracle top-10 ids|
  uint64_t approximate = 0;    // queries whose certificate flagged approx
  uint64_t leaf_visits = 0;    // summed over all queries
  double us_per_query = 0.0;   // best-of-reps wall time, never gated
};

SweepPoint RunSweepPoint(const NNCellIndex& index, const PointSet& queries,
                         const std::vector<std::vector<uint64_t>>& oracle,
                         const ApproxOptions& approx, int reps) {
  SweepPoint out;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    auto r = index.KnnQuery(queries[qi], kRecallK, approx);
    NNCELL_CHECK(r.ok());
    NNCELL_CHECK(!r->empty());
    if (r->front().id == oracle[qi][0]) ++out.recall1_hits;
    for (const auto& hit : *r) {
      if (std::find(oracle[qi].begin(), oracle[qi].end(), hit.id) !=
          oracle[qi].end()) {
        ++out.recall10_hits;
      }
    }
    // The certificate is shared by the k results of one query; count it
    // once.
    out.approximate += r->front().approx.approximate ? 1 : 0;
    out.leaf_visits += r->front().approx.leaf_visits;
  }

  // Timed pass: the single-NN query path, the one a serving tier tunes.
  out.us_per_query = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (size_t qi = 0; qi < queries.size(); ++qi) {
      auto r = approx.enabled() ? index.Query(queries[qi], approx)
                                : index.Query(queries[qi]);
      NNCELL_CHECK(r.ok());
    }
    auto t1 = std::chrono::steady_clock::now();
    const double us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() /
        static_cast<double>(queries.size());
    out.us_per_query = std::min(out.us_per_query, us);
  }
  return out;
}

void PrintSweepPoint(FILE* out, const SweepPoint& p, bool last) {
  std::fprintf(out,
               "\"recall1_hits\": %llu, \"recall10_hits\": %llu, "
               "\"approximate\": %llu, \"leaf_visits\": %llu, "
               "\"us_per_query\": %.3f}%s\n",
               static_cast<unsigned long long>(p.recall1_hits),
               static_cast<unsigned long long>(p.recall10_hits),
               static_cast<unsigned long long>(p.approximate),
               static_cast<unsigned long long>(p.leaf_visits),
               p.us_per_query, last ? "" : ",");
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }
  const int reps = quick ? 2 : 10;

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }

  BenchConfig config;  // defaults; the build is serial and seeded
  std::fprintf(out, "{\n \"schema\": 1,\n \"seed\": %llu,\n",
               static_cast<unsigned long long>(config.seed));
  std::fprintf(out, " \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out,
               " \"n\": %zu,\n \"queries\": %zu,\n \"recall_k\": %zu,\n"
               " \"default_epsilon\": %.3f,\n \"configs\": [\n",
               kPoints, kQueries, kRecallK, kDefaultApproxEpsilon);

  bool first_cfg = true;
  for (size_t dim : kDims) {
    PointSet pts = GenerateUniform(kPoints, dim, config.seed + dim);
    PointSet queries = GenerateQueries(kQueries, dim, config.seed ^ dim);
    const auto oracle = OracleTopK(pts, queries, kRecallK);

    NNCellOptions opts;
    opts.algorithm = RecommendedAlgorithm(dim);
    NNCellSetup setup = BuildNNCell(pts, opts, config);
    const NNCellIndex& index = *setup.index;

    // Exact-mode bit-identity: the approximate entry points with
    // default-constructed options must answer bit-identically to the
    // exact tier, query by query.
    uint64_t exact_match = 0;
    uint64_t exact_checksum = 0;
    for (size_t qi = 0; qi < kQueries; ++qi) {
      auto exact = index.Query(queries[qi]);
      auto routed = index.Query(queries[qi], ApproxOptions{});
      NNCELL_CHECK(exact.ok() && routed.ok());
      uint64_t eb, rb;
      std::memcpy(&eb, &exact->dist, sizeof(eb));
      std::memcpy(&rb, &routed->dist, sizeof(rb));
      if (exact->id == routed->id && eb == rb) ++exact_match;
      exact_checksum = FoldBits(exact_checksum, exact->dist);
      exact_checksum ^= (exact->id + 1) * 0x9e3779b97f4a7c15ULL;
    }

    if (!first_cfg) std::fprintf(out, ",\n");
    first_cfg = false;
    std::fprintf(out, "  {\"name\": \"d%zu\", \"dim\": %zu,\n", dim, dim);
    std::fprintf(out,
                 "   \"exact_match\": %llu, \"exact_checksum\": \"%016llx\","
                 "\n   \"epsilon_sweep\": [\n",
                 static_cast<unsigned long long>(exact_match),
                 static_cast<unsigned long long>(exact_checksum));
    for (size_t ei = 0; ei < sizeof(kEpsilons) / sizeof(kEpsilons[0]); ++ei) {
      ApproxOptions approx;
      approx.epsilon = kEpsilons[ei];
      SweepPoint p = RunSweepPoint(index, queries, oracle, approx, reps);
      std::fprintf(out, "    {\"epsilon\": %.3f, ", kEpsilons[ei]);
      PrintSweepPoint(out, p,
                      ei + 1 == sizeof(kEpsilons) / sizeof(kEpsilons[0]));
      std::fprintf(stderr,
                   "d=%-2zu eps=%-5.2f recall@1 %3llu/%zu recall@10 %4llu/%zu"
                   "  %7.1f us/q\n",
                   dim, kEpsilons[ei],
                   static_cast<unsigned long long>(p.recall1_hits), kQueries,
                   static_cast<unsigned long long>(p.recall10_hits),
                   kQueries * kRecallK, p.us_per_query);
    }
    std::fprintf(out, "   ],\n   \"budget_sweep\": [\n");
    for (size_t bi = 0; bi < sizeof(kBudgets) / sizeof(kBudgets[0]); ++bi) {
      ApproxOptions approx;
      approx.max_leaf_visits = kBudgets[bi];
      SweepPoint p = RunSweepPoint(index, queries, oracle, approx, reps);
      std::fprintf(out, "    {\"max_leaf_visits\": %llu, ",
                   static_cast<unsigned long long>(kBudgets[bi]));
      PrintSweepPoint(out, p,
                      bi + 1 == sizeof(kBudgets) / sizeof(kBudgets[0]));
      std::fprintf(stderr,
                   "d=%-2zu budget=%-3llu recall@1 %3llu/%zu recall@10 "
                   "%4llu/%zu  %7.1f us/q\n",
                   dim, static_cast<unsigned long long>(kBudgets[bi]),
                   static_cast<unsigned long long>(p.recall1_hits), kQueries,
                   static_cast<unsigned long long>(p.recall10_hits),
                   kQueries * kRecallK, p.us_per_query);
    }
    std::fprintf(out, "   ]}");
  }
  std::fprintf(out, "\n ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) { return nncell::bench::Main(argc, argv); }
