// LP hot-path regression bench: full NN-cell BulkBuild runs comparing the
// pre-PR solver configuration ("baseline": cold face solves over the
// unpruned constraint system) against the optimized pipeline ("optimized":
// bisector pre-pruning + ray-shoot warm starts). Emits one JSON document
// with wall-clock and the deterministic LP counters; tools/bench_regress.sh
// gates pull requests on the committed BENCH_lp.json baseline.
//
// The counters (lp_runs, lp_iterations, constraint_rows, pruned_rows and
// the face-kind breakdown) are a pure function of the config and seed, so
// the regression gate is machine-independent; wall-clock is recorded for
// the human reader and the speedup headline, not for gating.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"

namespace nncell {
namespace {

struct RegressConfig {
  const char* name;
  ApproxAlgorithm algorithm;
  size_t dim;
  size_t n;
  bool quick;  // included in --quick (CI smoke) runs
};

// The quick rows double as the CI smoke set; the committed baseline always
// contains the full set, so a quick run can gate against it by name.
const RegressConfig kConfigs[] = {
    {"Correct_d4_n500", ApproxAlgorithm::kCorrect, 4, 500, true},
    {"Correct_d16_n500", ApproxAlgorithm::kCorrect, 16, 500, true},
    {"Sphere_d8_n500", ApproxAlgorithm::kSphere, 8, 500, true},
    {"Correct_d4_n2000", ApproxAlgorithm::kCorrect, 4, 2000, false},
    {"Correct_d8_n2000", ApproxAlgorithm::kCorrect, 8, 2000, false},
    {"Correct_d16_n2000", ApproxAlgorithm::kCorrect, 16, 2000, false},
    {"Sphere_d16_n2000", ApproxAlgorithm::kSphere, 16, 2000, false},
    {"NNDirection_d16_n2000", ApproxAlgorithm::kNNDirection, 16, 2000, false},
};

struct ModeResult {
  double build_seconds = 0.0;
  ApproxStats stats;
};

ModeResult RunBuild(const PointSet& pts, const RegressConfig& cfg,
                    bool optimized) {
  NNCellOptions options;
  options.algorithm = cfg.algorithm;
  options.approx.prune_bisectors = optimized;
  options.approx.warm_start = optimized;

  // The LP counters are a pure function of the config; wall-clock is not,
  // so take the best of several builds to damp scheduler/frequency noise.
  constexpr int kReps = 3;
  ModeResult r;
  r.build_seconds = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < kReps; ++rep) {
    bench::BenchConfig bc;
    auto t0 = std::chrono::steady_clock::now();
    bench::NNCellSetup setup = bench::BuildNNCell(pts, options, bc);
    auto t1 = std::chrono::steady_clock::now();
    r.build_seconds = std::min(
        r.build_seconds, std::chrono::duration<double>(t1 - t0).count());
    r.stats = setup.index->build_stats().approx;
  }
  return r;
}

void PrintMode(FILE* out, const char* key, const ModeResult& r) {
  const ApproxStats& s = r.stats;
  std::fprintf(out,
               "      \"%s\": {\"build_seconds\": %.6f, \"lp_runs\": %zu, "
               "\"lp_iterations\": %zu, \"lp_failures\": %zu, "
               "\"constraint_rows\": %zu, \"pruned_rows\": %zu, "
               "\"skipped_faces\": %zu, \"warm_faces\": %zu, "
               "\"cold_faces\": %zu}",
               key, r.build_seconds, s.lp_runs, s.lp_iterations, s.lp_failures,
               s.constraint_rows, s.pruned_rows, s.skipped_faces, s.warm_faces,
               s.cold_faces);
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      out_path = argv[i] + 6;
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--out=FILE]\n", argv[0]);
      return 2;
    }
  }

  FILE* out = stdout;
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
  }

  std::fprintf(out, "{\n  \"schema\": 1,\n  \"seed\": 42,\n");
  std::fprintf(out, "  \"mode\": \"%s\",\n", quick ? "quick" : "full");
  std::fprintf(out, "  \"configs\": [\n");
  bool first = true;
  for (const RegressConfig& cfg : kConfigs) {
    if (quick && !cfg.quick) continue;
    PointSet pts = GenerateUniform(cfg.n, cfg.dim, /*seed=*/42);
    ModeResult base = RunBuild(pts, cfg, /*optimized=*/false);
    ModeResult opt = RunBuild(pts, cfg, /*optimized=*/true);

    double speedup = opt.build_seconds > 0.0
                         ? base.build_seconds / opt.build_seconds
                         : 0.0;
    double iter_reduction =
        opt.stats.lp_iterations > 0
            ? static_cast<double>(base.stats.lp_iterations) /
                  static_cast<double>(opt.stats.lp_iterations)
            : 0.0;

    if (!first) std::fprintf(out, ",\n");
    first = false;
    std::fprintf(out, "    {\n      \"name\": \"%s\",\n", cfg.name);
    std::fprintf(out,
                 "      \"algorithm\": \"%s\", \"dim\": %zu, \"n\": %zu,\n",
                 ApproxAlgorithmName(cfg.algorithm), cfg.dim, cfg.n);
    PrintMode(out, "baseline", base);
    std::fprintf(out, ",\n");
    PrintMode(out, "optimized", opt);
    std::fprintf(out, ",\n");
    std::fprintf(out,
                 "      \"wall_speedup\": %.3f, \"iteration_reduction\": "
                 "%.3f\n    }",
                 speedup, iter_reduction);

    std::fprintf(stderr,
                 "%-24s wall %.3fs -> %.3fs (%.2fx)  iters %zu -> %zu "
                 "(%.2fx)  pruned %zu/%zu  faces skip/warm/cold %zu/%zu/%zu\n",
                 cfg.name, base.build_seconds, opt.build_seconds, speedup,
                 base.stats.lp_iterations, opt.stats.lp_iterations,
                 iter_reduction, opt.stats.pruned_rows,
                 opt.stats.pruned_rows + opt.stats.constraint_rows,
                 opt.stats.skipped_faces, opt.stats.warm_faces,
                 opt.stats.cold_faces);
  }
  std::fprintf(out, "\n  ]\n}\n");
  if (out != stdout) std::fclose(out);
  return 0;
}

}  // namespace
}  // namespace nncell

int main(int argc, char** argv) { return nncell::Main(argc, argv); }
