// Microbenchmarks of the durability layer: CRC32C throughput, WAL append
// under the group-commit policies, and snapshot serialize/save/load. These
// bound the overhead a durable index adds to Insert/Delete (one record
// append + fsync per acknowledged operation) and to Checkpoint.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/rng.h"
#include "data/generators.h"
#include "nncell/nncell_index.h"
#include "storage/buffer_pool.h"
#include "storage/fs_util.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace nncell {
namespace {

std::string TmpPath(const std::string& tag) {
  return std::filesystem::temp_directory_path().string() +
         "/nncell_micro_persistence_" + tag;
}

void BM_Crc32c(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  Rng rng(1);
  std::vector<uint8_t> buf(bytes);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(buf.data(), buf.size()));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bytes));
}
BENCHMARK(BM_Crc32c)->Arg(64)->Arg(4096)->Arg(1 << 20);

// One WAL append of an insert-sized record under group_sync = N. With
// N = 1 every iteration pays an fsync (the per-operation durability cost);
// larger N amortizes it across the group.
void BM_WalAppend(benchmark::State& state) {
  const size_t group_sync = static_cast<size_t>(state.range(0));
  const std::string path =
      TmpPath("wal_" + std::to_string(group_sync) + ".log");
  std::remove(path.c_str());
  auto wal = WriteAheadLog::Open(path, 0, group_sync, false, nullptr);
  if (!wal.ok()) {
    state.SkipWithError(wal.status().ToString().c_str());
    return;
  }
  // An insert record for a 16-d point: op + id + dim + coordinates.
  const std::string payload(1 + 8 + 4 + 16 * 8, 'x');
  for (auto _ : state) {
    Status st = (*wal)->Append(payload);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  wal->reset();
  std::remove(path.c_str());
}
BENCHMARK(BM_WalAppend)->Arg(1)->Arg(8)->Arg(64);

// Full snapshot serialization + atomic write for an index of N points
// (Checkpoint's cost, minus the log truncation).
void BM_SnapshotSave(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  PageFile file(4096);
  BufferPool pool(&file, 4096);
  NNCellOptions options;
  options.algorithm = ApproxAlgorithm::kSphere;
  NNCellIndex index(&pool, 4, options);
  Status built = index.BulkBuild(GenerateUniform(n, 4, 7));
  if (!built.ok()) {
    state.SkipWithError(built.ToString().c_str());
    return;
  }
  const std::string path = TmpPath("snap_" + std::to_string(n) + ".nncell");
  for (auto _ : state) {
    Status st = index.Save(path);
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  auto size = std::filesystem::file_size(path);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotSave)->Arg(100)->Arg(1000);

// Validate + load the same snapshot (recovery's snapshot phase, including
// every checksum pass).
void BM_SnapshotLoad(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::string path = TmpPath("load_" + std::to_string(n) + ".nncell");
  {
    PageFile file(4096);
    BufferPool pool(&file, 4096);
    NNCellOptions options;
    options.algorithm = ApproxAlgorithm::kSphere;
    NNCellIndex index(&pool, 4, options);
    Status built = index.BulkBuild(GenerateUniform(n, 4, 7));
    Status saved = built.ok() ? index.Save(path) : built;
    if (!saved.ok()) {
      state.SkipWithError(saved.ToString().c_str());
      return;
    }
  }
  for (auto _ : state) {
    PageFile file(4096);
    BufferPool pool(&file, 4096);
    auto loaded = NNCellIndex::Load(path, &file, &pool);
    if (!loaded.ok()) {
      state.SkipWithError(loaded.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(loaded->get());
  }
  auto size = std::filesystem::file_size(path);
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(size));
  std::remove(path.c_str());
}
BENCHMARK(BM_SnapshotLoad)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace nncell

BENCHMARK_MAIN();
