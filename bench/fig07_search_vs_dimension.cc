// Figure 7 of the paper: total NN search time of the NN-cell approach vs.
// a classic NN search on the R*-tree and the X-tree, for growing
// dimensionality on uniformly distributed points. The paper's headline:
// comparable in low dimensions, NN-cell clearly fastest in high dimensions.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::vector<size_t> dims = {4, 6, 8, 10, 12, 14, 16};
  const size_t n = Scaled(1200, config.scale, 50);

  std::printf(
      "Figure 7: total search time vs dimension, N=%zu uniform points,\n"
      "%zu cold NN queries, page latency %.1f ms\n\n",
      n, config.queries, config.page_latency_ms);
  Table table({"dim", "R*-tree[ms]", "X-tree[ms]", "NN-cell[ms]"});
  for (size_t dim : dims) {
    PointSet pts = GenerateUniform(n, dim, config.seed + dim);
    PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ dim);

    PointTreeSetup rstar = BuildPointTree(pts, /*use_xtree=*/false, config);
    QueryCost r_cost = MeasurePointTreeNN(rstar, queries, config);

    PointTreeSetup xtree = BuildPointTree(pts, /*use_xtree=*/true, config);
    QueryCost x_cost = MeasurePointTreeNN(xtree, queries, config);

    NNCellOptions opts;
    opts.algorithm = RecommendedAlgorithm(dim);
    NNCellSetup nncell = BuildNNCell(pts, opts, config);
    QueryCost c_cost = MeasureNNCellQueries(nncell, queries, config);

    table.AddRow({Table::Int(dim), Table::Num(r_cost.total_ms, 2),
                  Table::Num(x_cost.total_ms, 2),
                  Table::Num(c_cost.total_ms, 2)});
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
