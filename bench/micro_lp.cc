// Microbenchmarks of the linear-programming substrate: active-set solves
// of cell-approximation LPs as a function of dimensionality and
// constraint count. These dominate NN-cell index construction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "geom/bisector.h"
#include "geom/cell_approximator.h"
#include "lp/active_set_solver.h"

namespace nncell {
namespace {

// One MBR face: maximize x_0 over the NN-cell of a random owner against
// `constraints` random neighbors.
void BM_CellFaceLp(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t constraints = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  std::vector<double> owner(dim);
  for (auto& v : owner) v = rng.NextDouble();
  std::vector<std::vector<double>> others(constraints,
                                          std::vector<double>(dim));
  std::vector<const double*> ptrs;
  for (auto& o : others) {
    for (auto& v : o) v = rng.NextDouble();
    ptrs.push_back(o.data());
  }
  LpProblem problem =
      BuildCellProblem(owner.data(), ptrs, dim, HyperRect::UnitCube(dim));
  std::vector<double> c(dim, 0.0);
  c[0] = 1.0;
  ActiveSetSolver solver;
  for (auto _ : state) {
    LpResult r = solver.Maximize(problem, c, owner);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_CellFaceLp)
    ->Args({4, 50})
    ->Args({4, 500})
    ->Args({8, 500})
    ->Args({16, 500})
    ->Args({16, 2000});

// The full per-cell pipeline (pruner + ray-shoot session + 2d face
// solves), cold vs optimized, cycling through the owners of one point set.
// Beyond wall time the counters report the hot-path health metrics:
//   warm_hit_rate  -- fraction of faces answered without a cold solve
//                     (certified-skip or warm-started),
//   pruned_frac    -- fraction of bisector rows dropped before any LP ran,
//   iters_per_face -- LP iterations averaged over all faces (skipped
//                     faces count as 0, which is the point).
void BM_CellMbrPipeline(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  const bool optimized = state.range(2) != 0;
  Rng rng(1234);
  PointSet pts(dim);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> p(dim);
    for (auto& v : p) v = rng.NextDouble();
    pts.Add(p);
  }
  CellApproxOptions opts;
  opts.prune_bisectors = optimized;
  opts.warm_start = optimized;
  CellApproximator approx(dim, HyperRect::UnitCube(dim), LpOptions(), opts);
  ApproxStats stats;
  size_t owner = 0;
  std::vector<const double*> others;
  for (auto _ : state) {
    others.clear();
    for (size_t i = 0; i < n; ++i) {
      if (i != owner) others.push_back(pts[i]);
    }
    HyperRect mbr = approx.ApproximateMbr(pts[owner], others, &stats);
    benchmark::DoNotOptimize(mbr);
    owner = (owner + 1) % n;
  }
  const double faces = static_cast<double>(stats.skipped_faces +
                                           stats.warm_faces +
                                           stats.cold_faces);
  const double rows =
      static_cast<double>(stats.constraint_rows + stats.pruned_rows);
  state.counters["warm_hit_rate"] =
      faces > 0.0 ? static_cast<double>(stats.skipped_faces +
                                        stats.warm_faces) / faces
                  : 0.0;
  state.counters["pruned_frac"] =
      rows > 0.0 ? static_cast<double>(stats.pruned_rows) / rows : 0.0;
  state.counters["iters_per_face"] =
      faces > 0.0 ? static_cast<double>(stats.lp_iterations) / faces : 0.0;
}
BENCHMARK(BM_CellMbrPipeline)
    ->Args({4, 500, 0})
    ->Args({4, 500, 1})
    ->Args({8, 500, 0})
    ->Args({8, 500, 1})
    ->Args({16, 500, 0})
    ->Args({16, 500, 1})
    ->Args({16, 2000, 1});

void BM_PhaseOneFeasibility(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(99);
  LpProblem problem(dim);
  problem.AddBoxConstraints(HyperRect::UnitCube(dim));
  std::vector<double> center(dim, 0.5);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> a(dim);
    for (auto& v : a) v = rng.NextGaussian();
    double b = 0.0;
    for (size_t k = 0; k < dim; ++k) b += a[k] * center[k];
    problem.AddConstraint(a, b + rng.NextDouble(0.01, 0.3));
  }
  std::vector<double> hint(dim, 0.95);
  for (auto _ : state) {
    auto r = FindFeasiblePoint(problem, hint);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PhaseOneFeasibility)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace nncell

BENCHMARK_MAIN();
