// Microbenchmarks of the linear-programming substrate: active-set solves
// of cell-approximation LPs as a function of dimensionality and
// constraint count. These dominate NN-cell index construction.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "geom/bisector.h"
#include "lp/active_set_solver.h"

namespace nncell {
namespace {

// One MBR face: maximize x_0 over the NN-cell of a random owner against
// `constraints` random neighbors.
void BM_CellFaceLp(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const size_t constraints = static_cast<size_t>(state.range(1));
  Rng rng(1234);
  std::vector<double> owner(dim);
  for (auto& v : owner) v = rng.NextDouble();
  std::vector<std::vector<double>> others(constraints,
                                          std::vector<double>(dim));
  std::vector<const double*> ptrs;
  for (auto& o : others) {
    for (auto& v : o) v = rng.NextDouble();
    ptrs.push_back(o.data());
  }
  LpProblem problem =
      BuildCellProblem(owner.data(), ptrs, dim, HyperRect::UnitCube(dim));
  std::vector<double> c(dim, 0.0);
  c[0] = 1.0;
  ActiveSetSolver solver;
  for (auto _ : state) {
    LpResult r = solver.Maximize(problem, c, owner);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_CellFaceLp)
    ->Args({4, 50})
    ->Args({4, 500})
    ->Args({8, 500})
    ->Args({16, 500})
    ->Args({16, 2000});

void BM_PhaseOneFeasibility(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  Rng rng(99);
  LpProblem problem(dim);
  problem.AddBoxConstraints(HyperRect::UnitCube(dim));
  std::vector<double> center(dim, 0.5);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> a(dim);
    for (auto& v : a) v = rng.NextGaussian();
    double b = 0.0;
    for (size_t k = 0; k < dim; ++k) b += a[k] * center[k];
    problem.AddConstraint(a, b + rng.NextDouble(0.01, 0.3));
  }
  std::vector<double> hint(dim, 0.95);
  for (auto _ : state) {
    auto r = FindFeasiblePoint(problem, hint);
    benchmark::DoNotOptimize(r.ok());
  }
}
BENCHMARK(BM_PhaseOneFeasibility)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace nncell

BENCHMARK_MAIN();
