// Figure 9 of the paper: page accesses versus CPU time, per dimension, for
// the R*-tree, the X-tree and the NN-cell approach. The paper observes:
// the NN-cell approach beats the R*-tree in both metrics; against the
// X-tree it wins on CPU time (a point query needs no min-max sorting)
// while page accesses are comparable.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::vector<size_t> dims = {4, 6, 8, 10, 12, 14, 16};
  const size_t n = Scaled(1200, config.scale, 50);

  std::printf(
      "Figure 9: page accesses vs CPU time per NN query,\n"
      "N=%zu uniform points, %zu cold queries\n\n",
      n, config.queries);
  Table pages({"dim", "R*-pages", "X-pages", "NNcell-pages"});
  Table cpu({"dim", "R*-cpu[ms]", "X-cpu[ms]", "NNcell-cpu[ms]"});
  Table work({"dim", "NN-visits", "NN-cands", "NN-dists"});
  for (size_t dim : dims) {
    PointSet pts = GenerateUniform(n, dim, config.seed + dim);
    PointSet queries = GenerateQueries(config.queries, dim, config.seed ^ dim);

    PointTreeSetup rstar = BuildPointTree(pts, false, config);
    QueryCost r = MeasurePointTreeNN(rstar, queries, config);
    PointTreeSetup xtree = BuildPointTree(pts, true, config);
    QueryCost x = MeasurePointTreeNN(xtree, queries, config);
    NNCellOptions opts;
    opts.algorithm = RecommendedAlgorithm(dim);
    NNCellSetup nncell = BuildNNCell(pts, opts, config);
    QueryCost c = MeasureNNCellQueries(nncell, queries, config);

    pages.AddRow({Table::Int(dim), Table::Num(r.page_accesses, 1),
                  Table::Num(x.page_accesses, 1),
                  Table::Num(c.page_accesses, 1)});
    cpu.AddRow({Table::Int(dim), Table::Num(r.cpu_ms, 3),
                Table::Num(x.cpu_ms, 3), Table::Num(c.cpu_ms, 3)});
    work.AddRow({Table::Int(dim), Table::Num(c.node_visits, 1),
                 Table::Num(c.candidates, 1),
                 Table::Num(c.distance_calcs, 1)});
  }
  std::printf("(a) Page accesses per query\n");
  pages.Print();
  std::printf("(b) CPU time per query [ms]\n");
  cpu.Print();
  std::printf(
      "(c) NN-cell index work per query (metrics registry: tree node "
      "visits, candidate cells, exact distance computations)\n");
  work.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
