// Figure 5 of the paper: quality-to-performance ratio of the four
// approximation algorithms for d = 4, 8, 12, 16. Higher is better; the
// paper finds Sphere best for lower dimensions and NN-Direction best for
// d >= 12.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "data/generators.h"

namespace nncell {
namespace bench {
namespace {

void Run(const BenchConfig& config) {
  const std::vector<size_t> dims = {4, 8, 12, 16};
  const std::vector<ApproxAlgorithm> algorithms = {
      ApproxAlgorithm::kCorrect, ApproxAlgorithm::kPoint,
      ApproxAlgorithm::kSphere, ApproxAlgorithm::kNNDirection};
  const size_t n = Scaled(250, config.scale, 20);

  std::printf(
      "Figure 5: quality-to-performance ratio, N=%zu uniform points\n"
      "ratio = 1 / (overlap * build_seconds); higher is better\n\n",
      n);
  Table table({"dim", "Correct", "Point", "Sphere", "NN-Direction", "best"});
  for (size_t dim : dims) {
    std::vector<std::string> row = {Table::Int(dim)};
    double best_ratio = -1.0;
    const char* best_name = "?";
    for (ApproxAlgorithm alg : algorithms) {
      NNCellOptions opts;
      opts.algorithm = alg;
      PointSet pts = GenerateUniform(n, dim, config.seed + dim);
      NNCellSetup setup = BuildNNCell(pts, opts, config);
      double overlap = setup.index->ExpectedCandidates();
      double ratio = 1.0 / (overlap * std::max(setup.build_seconds, 1e-6));
      row.push_back(Table::Num(ratio, 2));
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_name = ApproxAlgorithmName(alg);
      }
    }
    row.push_back(best_name);
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace nncell

int main(int argc, char** argv) {
  nncell::bench::Run(nncell::bench::ParseArgs(argc, argv));
  return 0;
}
