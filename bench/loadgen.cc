// loadgen -- closed- and open-loop load generator for nncell_server.
//
//   loadgen --socket=PATH [--tcp-port=N] [--connections=N] [--ops=N]
//           [--qps=R] [--mix=Q:I:D] [--preload=N] [--zipf=THETA]
//           [--seed=S] [--label=STR] [--shards=K] [--epsilon=E]
//           [--max-visits=N] [--dump-preload=PATH] [--oracle-snapshot=PATH]
//
// Drives the wire protocol of docs/SERVING.md over N concurrent
// connections and prints one JSON object with per-type counts, the
// conservation counters seen from the client side, latency percentiles
// (p50/p90/p99/p999) and throughput.
//
//  * closed loop (default): every connection keeps exactly one request in
//    flight; total throughput at a high connection count approximates the
//    saturation rate.
//  * open loop (--qps=R): requests are scheduled at the target aggregate
//    rate and latency is measured from the *scheduled* send time, so
//    server-side queueing shows up in the percentiles instead of being
//    hidden by coordinated omission.
//
// The op mix is --mix=query:insert:delete weights. Query points are drawn
// around the --preload points with zipfian rank skew (--zipf=0 uniform;
// theta must be < 1), so a hot set exists like in a real serving workload.
// Deletes only target ids the same connection inserted earlier, which
// keeps every run valid regardless of interleaving.
//
// Determinism: with --connections=1 the request stream and every response
// are a pure function of the flags, and `checksum` (a hash over the
// integer fields of query responses: result id and candidate count) is
// byte-stable across runs -- tools/bench_serve.sh gates on it. Floating
// point fields deliberately stay out of the checksum.
//
// Approximate tier (docs/APPROXIMATE.md): --epsilon / --max-visits send
// every query through the certified approximate path (the approx request
// block of docs/SERVING.md) and add an "approx" object to the results
// JSON; without those flags the request stream and the output schema are
// byte-identical to what they were before the tier existed.
// --dump-preload writes the preloaded points as CSV, and
// --oracle-snapshot=PATH reads such a CSV back as the ground truth for
// per-query recall sampling: a query counts as a recall hit when its
// returned distance is <= the oracle's sequential-scan NN distance over
// the snapshot (within 1e-9 relative slack; mid-run inserts can only
// shrink the returned distance, never invalidate the rule).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/approx.h"
#include "common/rng.h"
#include "server/client.h"
#include "server/protocol.h"

namespace {

using namespace nncell;
using server::Client;
using Clock = std::chrono::steady_clock;

struct Config {
  std::string socket_path;
  int tcp_port = 0;
  size_t connections = 1;
  size_t ops = 1000;  // total across all connections
  double qps = 0;     // 0 = closed loop
  uint64_t weight_query = 90;
  uint64_t weight_insert = 8;
  uint64_t weight_delete = 2;
  size_t preload = 256;
  size_t dim = 4;  // dimension of preload/insert points
  double zipf_theta = 0.99;
  uint64_t seed = 42;
  std::string label = "loadgen";
  // Shard count of the server under test. Sharding is entirely server-side
  // (the wire protocol is identical); this is recorded in the output's
  // config object so sharded bench runs are self-describing
  // (tools/bench_shard.sh sweeps it).
  size_t shards = 0;
  // Approximate-tier knobs; default-constructed (disabled) keeps the
  // request stream and the output schema byte-identical to the exact tier.
  ApproxOptions approx;
  // Write the preload points to this CSV path (empty = don't).
  std::string dump_preload;
  // Recall ground truth: a CSV of points (typically a --dump-preload file
  // from an identically seeded run) scanned sequentially per query.
  std::string oracle_snapshot;
};

// Gray et al. zipfian rank generator over [0, n); theta in [0, 1).
class Zipf {
 public:
  Zipf(uint64_t n, double theta) : n_(n), theta_(theta) {
    for (uint64_t i = 1; i <= n_; ++i) zetan_ += 1.0 / std::pow(i, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    const double zeta2 = 1.0 + 1.0 / std::pow(2.0, theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
           (1.0 - zeta2 / zetan_);
  }

  uint64_t Next(Rng& rng) const {
    const double u = rng.NextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0) return 0;
    if (uz < 1.0 + std::pow(0.5, theta_)) return 1;
    const uint64_t r = static_cast<uint64_t>(
        static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
    return r >= n_ ? n_ - 1 : r;
  }

 private:
  uint64_t n_;
  double theta_;
  double zetan_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
};

struct WorkerStats {
  uint64_t sent = 0;
  uint64_t ok = 0;
  uint64_t rejected = 0;   // RETRY_LATER / SHUTTING_DOWN
  uint64_t errors = 0;     // transport faults and ERROR responses
  uint64_t queries = 0;
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t checksum = 0;     // integer-field hash of query responses
  // Hash over result ids alone. Candidate counts legitimately differ
  // between shard counts (a scatter-gather query sums the probed shards'
  // candidate sets), ids never do -- tools/bench_shard.sh gates on this
  // being identical across its whole K sweep.
  uint64_t id_checksum = 0;
  // Approximate-tier certificate aggregates (only touched when the approx
  // flags are set) and recall samples (only when an oracle is loaded).
  uint64_t approx_approximate = 0;
  uint64_t approx_terminated_early = 0;
  uint64_t approx_truncated = 0;
  uint64_t approx_leaf_visits = 0;
  uint64_t recall_samples = 0;
  uint64_t recall_hits = 0;
  std::vector<uint64_t> lat_us;
};

// Sequential-scan NN distance over the oracle snapshot -- the same ground
// truth bench_recall uses, computed per sampled query.
double OracleNnDist(const std::vector<std::vector<double>>& oracle,
                    const std::vector<double>& q) {
  double best = std::numeric_limits<double>::infinity();
  for (const std::vector<double>& p : oracle) {
    double d2 = 0;
    for (size_t i = 0; i < q.size(); ++i) {
      const double diff = p[i] - q[i];
      d2 += diff * diff;
    }
    best = std::min(best, d2);
  }
  return std::sqrt(best);
}

StatusOr<Client> Connect(const Config& cfg) {
  if (!cfg.socket_path.empty()) return Client::ConnectUnix(cfg.socket_path);
  return Client::ConnectTcp(cfg.tcp_port);
}

void Worker(const Config& cfg, size_t worker_id, size_t ops,
            const std::vector<std::vector<double>>* preload_points,
            const std::vector<std::vector<double>>* oracle_points,
            Clock::time_point t0, WorkerStats* stats) {
  auto client = Connect(cfg);
  if (!client.ok()) {
    stats->errors += ops;
    return;
  }
  Rng rng(cfg.seed + 0x9e37 * (worker_id + 1));
  const size_t dim =
      preload_points->empty() ? cfg.dim : (*preload_points)[0].size();
  Zipf zipf(preload_points->empty() ? 1 : preload_points->size(),
            cfg.zipf_theta);
  std::vector<uint64_t> my_ids;  // ids this connection inserted
  const uint64_t total_weight =
      cfg.weight_query + cfg.weight_insert + cfg.weight_delete;
  const double interval_s =
      cfg.qps > 0 ? cfg.connections / cfg.qps : 0;
  stats->lat_us.reserve(ops);

  for (size_t k = 0; k < ops; ++k) {
    Clock::time_point scheduled = Clock::now();
    if (cfg.qps > 0) {
      scheduled =
          t0 + std::chrono::nanoseconds(static_cast<uint64_t>(
                   (worker_id * interval_s / cfg.connections + k * interval_s) *
                   1e9));
      std::this_thread::sleep_until(scheduled);
    }

    uint64_t pick = rng.NextU64() % total_weight;
    Status st = Status::OK();
    ++stats->sent;
    if (pick >= cfg.weight_query &&
        pick < cfg.weight_query + cfg.weight_insert) {
      // insert
      ++stats->inserts;
      std::vector<double> p(dim);
      for (double& v : p) v = rng.NextDouble();
      auto id = client->Insert(p);
      st = id.status();
      if (id.ok()) my_ids.push_back(*id);
    } else if (pick >= cfg.weight_query + cfg.weight_insert &&
               !my_ids.empty()) {
      // delete one of our own inserts
      ++stats->deletes;
      uint64_t id = my_ids.back();
      my_ids.pop_back();
      st = client->Delete(id);
    } else {
      // query: a zipf-ranked preload point plus gaussian jitter
      ++stats->queries;
      std::vector<double> q(dim);
      if (preload_points->empty()) {
        for (double& v : q) v = rng.NextDouble();
      } else {
        const std::vector<double>& base =
            (*preload_points)[zipf.Next(rng)];
        for (size_t d = 0; d < q.size(); ++d) {
          q[d] = base[d] + 0.01 * rng.NextGaussian();
        }
      }
      auto r = cfg.approx.enabled() ? client->Query(q, cfg.approx)
                                    : client->Query(q);
      st = r.status();
      if (r.ok()) {
        stats->checksum = stats->checksum * 0x9e3779b97f4a7c15ULL +
                          (r->id + 1) * 31 + r->candidates;
        stats->id_checksum =
            stats->id_checksum * 0x9e3779b97f4a7c15ULL + (r->id + 1);
        if (cfg.approx.enabled() && r->has_certificate) {
          stats->approx_approximate += r->certificate.approximate ? 1 : 0;
          stats->approx_terminated_early +=
              r->certificate.terminated_early ? 1 : 0;
          stats->approx_truncated += r->certificate.truncated ? 1 : 0;
          stats->approx_leaf_visits += r->certificate.leaf_visits;
        }
        if (!oracle_points->empty()) {
          const double oracle_dist = OracleNnDist(*oracle_points, q);
          ++stats->recall_samples;
          if (r->dist <= oracle_dist * (1.0 + 1e-9)) ++stats->recall_hits;
        }
      }
    }

    const auto now = Clock::now();
    if (st.ok()) {
      ++stats->ok;
      stats->lat_us.push_back(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(now -
                                                                scheduled)
              .count()));
    } else if (st.code() == StatusCode::kResourceExhausted ||
               st.code() == StatusCode::kFailedPrecondition) {
      ++stats->rejected;
    } else {
      ++stats->errors;
    }
  }
}

uint64_t Percentile(std::vector<uint64_t>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (idx >= sorted.size()) idx = sorted.size() - 1;
  return sorted[idx];
}

const char* FlagValue(int argc, char** argv, const char* name) {
  size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  if (const char* v = FlagValue(argc, argv, "--socket")) cfg.socket_path = v;
  if (const char* v = FlagValue(argc, argv, "--tcp-port")) {
    cfg.tcp_port = std::atoi(v);
  }
  if (const char* v = FlagValue(argc, argv, "--connections")) {
    cfg.connections = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--ops")) {
    cfg.ops = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--qps")) {
    cfg.qps = std::strtod(v, nullptr);
  }
  if (const char* v = FlagValue(argc, argv, "--mix")) {
    unsigned long long q = 0, ins = 0, del = 0;
    if (std::sscanf(v, "%llu:%llu:%llu", &q, &ins, &del) != 3) {
      std::fprintf(stderr, "loadgen: bad --mix, want Q:I:D\n");
      return 2;
    }
    cfg.weight_query = q;
    cfg.weight_insert = ins;
    cfg.weight_delete = del;
  }
  if (const char* v = FlagValue(argc, argv, "--preload")) {
    cfg.preload = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--dim")) {
    cfg.dim = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--zipf")) {
    cfg.zipf_theta = std::strtod(v, nullptr);
  }
  if (const char* v = FlagValue(argc, argv, "--seed")) {
    cfg.seed = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--label")) cfg.label = v;
  if (const char* v = FlagValue(argc, argv, "--shards")) {
    cfg.shards = std::strtoul(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--epsilon")) {
    cfg.approx.epsilon = std::strtod(v, nullptr);
    if (!(cfg.approx.epsilon >= 0.0)) {
      std::fprintf(stderr, "loadgen: --epsilon must be >= 0\n");
      return 2;
    }
  }
  if (const char* v = FlagValue(argc, argv, "--max-visits")) {
    cfg.approx.max_leaf_visits = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = FlagValue(argc, argv, "--dump-preload")) {
    cfg.dump_preload = v;
  }
  if (const char* v = FlagValue(argc, argv, "--oracle-snapshot")) {
    cfg.oracle_snapshot = v;
  }
  bool stats_only = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) stats_only = true;
  }
  if (cfg.socket_path.empty() && cfg.tcp_port == 0) {
    std::fprintf(stderr,
                 "usage: loadgen --socket=PATH [--tcp-port=N]"
                 " [--connections=N] [--ops=N] [--qps=R] [--mix=Q:I:D]"
                 " [--preload=N] [--dim=N] [--zipf=THETA] [--seed=S]"
                 " [--label=STR] [--shards=K] [--epsilon=E] [--max-visits=N]"
                 " [--dump-preload=PATH] [--oracle-snapshot=PATH]"
                 " [--stats]\n");
    return 2;
  }
  if (stats_only) {
    // One STATS_JSON round trip, body to stdout: lets shell harnesses
    // observe a live server's conservation counters over the wire.
    auto client = Connect(cfg);
    if (!client.ok()) {
      std::fprintf(stderr, "loadgen: connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    auto stats = client->StatsJson();
    if (!stats.ok()) {
      std::fprintf(stderr, "loadgen: stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", stats->c_str());
    return 0;
  }
  if (cfg.connections == 0 || cfg.zipf_theta < 0 || cfg.zipf_theta >= 1) {
    std::fprintf(stderr, "loadgen: need connections >= 1, 0 <= zipf < 1\n");
    return 2;
  }
  if (cfg.weight_query + cfg.weight_insert + cfg.weight_delete == 0) {
    std::fprintf(stderr, "loadgen: --mix weights must not all be zero\n");
    return 2;
  }

  // Preload through the server on one connection: the index dimension is
  // dimension comes from --dim (must match the server's index); the
  // preload points double as the zipf-skewed query targets.
  std::vector<std::vector<double>> preload_points;
  {
    auto client = Connect(cfg);
    if (!client.ok()) {
      std::fprintf(stderr, "loadgen: connect failed: %s\n",
                   client.status().ToString().c_str());
      return 1;
    }
    Status st = client->Ping();
    if (!st.ok()) {
      std::fprintf(stderr, "loadgen: ping failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    Rng rng(cfg.seed);
    for (size_t i = 0; i < cfg.preload; ++i) {
      std::vector<double> p(cfg.dim);
      for (double& v : p) v = rng.NextDouble();
      auto id = client->Insert(p);
      if (!id.ok()) {
        std::fprintf(stderr, "loadgen: preload insert failed: %s\n",
                     id.status().ToString().c_str());
        return 1;
      }
      preload_points.push_back(std::move(p));
    }
  }

  if (!cfg.dump_preload.empty()) {
    std::ofstream out(cfg.dump_preload);
    if (!out.is_open()) {
      std::fprintf(stderr, "loadgen: cannot write %s\n",
                   cfg.dump_preload.c_str());
      return 1;
    }
    out << "# loadgen preload snapshot: " << preload_points.size()
        << " points, seed " << cfg.seed << "\n";
    char num[64];
    for (const std::vector<double>& p : preload_points) {
      for (size_t d = 0; d < p.size(); ++d) {
        // %.17g round-trips a double exactly, so the oracle scan sees the
        // same coordinates the server was preloaded with.
        std::snprintf(num, sizeof(num), "%.17g", p[d]);
        out << (d == 0 ? "" : ",") << num;
      }
      out << "\n";
    }
  }

  std::vector<std::vector<double>> oracle_points;
  if (!cfg.oracle_snapshot.empty()) {
    std::ifstream in(cfg.oracle_snapshot);
    if (!in.is_open()) {
      std::fprintf(stderr, "loadgen: cannot open %s\n",
                   cfg.oracle_snapshot.c_str());
      return 1;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::vector<double> p;
      std::stringstream ss(line);
      std::string field;
      while (std::getline(ss, field, ',')) {
        p.push_back(std::strtod(field.c_str(), nullptr));
      }
      if (p.size() != cfg.dim) {
        std::fprintf(stderr, "loadgen: oracle snapshot dim %zu != --dim %zu\n",
                     p.size(), cfg.dim);
        return 1;
      }
      oracle_points.push_back(std::move(p));
    }
    if (oracle_points.empty()) {
      std::fprintf(stderr, "loadgen: oracle snapshot %s has no points\n",
                   cfg.oracle_snapshot.c_str());
      return 1;
    }
  }

  std::vector<WorkerStats> stats(cfg.connections);
  std::vector<std::thread> threads;
  const Clock::time_point t0 = Clock::now();
  for (size_t w = 0; w < cfg.connections; ++w) {
    const size_t ops = cfg.ops / cfg.connections +
                       (w < cfg.ops % cfg.connections ? 1 : 0);
    threads.emplace_back(Worker, cfg, w, ops, &preload_points,
                         &oracle_points, t0, &stats[w]);
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(
          Clock::now() - t0)
          .count();

  WorkerStats total;
  std::vector<uint64_t> lat;
  for (const WorkerStats& s : stats) {
    total.sent += s.sent;
    total.ok += s.ok;
    total.rejected += s.rejected;
    total.errors += s.errors;
    total.queries += s.queries;
    total.inserts += s.inserts;
    total.deletes += s.deletes;
    // XOR-fold per-connection checksums: commutative, so the aggregate is
    // independent of thread completion order.
    total.checksum ^= s.checksum;
    total.id_checksum ^= s.id_checksum;
    total.approx_approximate += s.approx_approximate;
    total.approx_terminated_early += s.approx_terminated_early;
    total.approx_truncated += s.approx_truncated;
    total.approx_leaf_visits += s.approx_leaf_visits;
    total.recall_samples += s.recall_samples;
    total.recall_hits += s.recall_hits;
    lat.insert(lat.end(), s.lat_us.begin(), s.lat_us.end());
  }
  std::sort(lat.begin(), lat.end());

  // The "approx" results object only exists when an approximate-tier or
  // recall flag was given, so default runs emit the pre-existing schema
  // byte-for-byte (tools/bench_serve.sh diffs against it).
  std::string approx_json;
  if (cfg.approx.enabled() || !oracle_points.empty()) {
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "\"approx\":{\"approximate\":%llu,\"epsilon\":%.6f,"
        "\"leaf_visits\":%llu,\"max_leaf_visits\":%llu,\"recall\":%.6f,"
        "\"recall_hits\":%llu,\"recall_samples\":%llu,"
        "\"terminated_early\":%llu,\"truncated\":%llu},",
        static_cast<unsigned long long>(total.approx_approximate),
        cfg.approx.epsilon,
        static_cast<unsigned long long>(total.approx_leaf_visits),
        static_cast<unsigned long long>(cfg.approx.max_leaf_visits),
        total.recall_samples == 0
            ? 1.0
            : static_cast<double>(total.recall_hits) /
                  static_cast<double>(total.recall_samples),
        static_cast<unsigned long long>(total.recall_hits),
        static_cast<unsigned long long>(total.recall_samples),
        static_cast<unsigned long long>(total.approx_terminated_early),
        static_cast<unsigned long long>(total.approx_truncated));
    approx_json = buf;
  }

  std::printf(
      "{\"label\":\"%s\",\"config\":{\"connections\":%zu,\"mix\":\"%llu:%llu:"
      "%llu\",\"ops\":%zu,\"preload\":%zu,\"qps\":%.1f,\"seed\":%llu,"
      "\"shards\":%zu,\"zipf\":%.3f},"
      "\"results\":{%s\"checksum\":%llu,\"deletes\":%llu,\"elapsed_s\":%.3f,"
      "\"errors\":%llu,\"id_checksum\":%llu,\"inserts\":%llu,"
      "\"latency_us\":{\"p50\":%llu,"
      "\"p90\":%llu,\"p99\":%llu,\"p999\":%llu,\"max\":%llu},\"ok\":%llu,"
      "\"queries\":%llu,\"rejected\":%llu,\"sent\":%llu,"
      "\"throughput_ops_s\":%.1f}}\n",
      cfg.label.c_str(), cfg.connections,
      static_cast<unsigned long long>(cfg.weight_query),
      static_cast<unsigned long long>(cfg.weight_insert),
      static_cast<unsigned long long>(cfg.weight_delete), cfg.ops,
      cfg.preload, cfg.qps, static_cast<unsigned long long>(cfg.seed),
      cfg.shards, cfg.zipf_theta, approx_json.c_str(),
      static_cast<unsigned long long>(total.checksum),
      static_cast<unsigned long long>(total.deletes), elapsed_s,
      static_cast<unsigned long long>(total.errors),
      static_cast<unsigned long long>(total.id_checksum),
      static_cast<unsigned long long>(total.inserts),
      static_cast<unsigned long long>(Percentile(lat, 0.50)),
      static_cast<unsigned long long>(Percentile(lat, 0.90)),
      static_cast<unsigned long long>(Percentile(lat, 0.99)),
      static_cast<unsigned long long>(Percentile(lat, 0.999)),
      static_cast<unsigned long long>(lat.empty() ? 0 : lat.back()),
      static_cast<unsigned long long>(total.ok),
      static_cast<unsigned long long>(total.queries),
      static_cast<unsigned long long>(total.rejected),
      static_cast<unsigned long long>(total.sent),
      elapsed_s > 0 ? static_cast<double>(total.ok) / elapsed_s : 0.0);
  return total.errors == 0 ? 0 : 1;
}
