// Microbenchmarks of the distance kernel layer: batched L2 scans over the
// SoA block store and the LP panel kernels, scalar reference table vs the
// runtime-dispatched table, across the dimensionalities the index actually
// runs (d = 2..32). Counters report throughput in the units that matter
// for the kernels: bytes/second of point data consumed (GB/s) and distance
// evaluations per nanosecond.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "common/kernels/kernels.h"
#include "common/kernels/soa_store.h"
#include "common/rng.h"

namespace nncell {
namespace {

constexpr size_t kPoints = 16384;

const kernels::KernelOps& TableFor(bool dispatched) {
  return dispatched ? kernels::Ops() : kernels::ScalarOps();
}

// Batched 1 query x N points L2 scan over the blocked SoA layout — the
// sequential-scan oracle and candidate-scan hot loop.
void BM_L2BatchSoa(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  const kernels::KernelOps& ops = TableFor(dispatched);

  Rng rng(42);
  kernels::SoaBlockStore store(dim);
  std::vector<double> p(dim);
  for (size_t i = 0; i < kPoints; ++i) {
    for (auto& v : p) v = rng.NextDouble();
    store.Append(p.data());
  }
  std::vector<double> q(dim);
  for (auto& v : q) v = rng.NextDouble();
  std::vector<double> out(kPoints);

  for (auto _ : state) {
    ops.l2_batch_soa(q.data(), store.blocks(), kPoints, dim, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  const double evals = static_cast<double>(state.iterations()) * kPoints;
  state.SetBytesProcessed(static_cast<int64_t>(
      evals * dim * sizeof(double)));  // GB/s of point data
  state.counters["evals/ns"] =
      benchmark::Counter(evals * 1e-9, benchmark::Counter::kIsRate);
  state.SetLabel(ops.name);
}

// Gather variant: 4 arbitrary AoS row pointers per call (candidate lists).
void BM_L2Batch4(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  const kernels::KernelOps& ops = TableFor(dispatched);

  Rng rng(42);
  std::vector<double> data(kPoints * dim);
  for (auto& v : data) v = rng.NextDouble();
  std::vector<double> q(dim);
  for (auto& v : q) v = rng.NextDouble();
  std::vector<double> out(kPoints);

  for (auto _ : state) {
    const double* ptrs[4];
    for (size_t j = 0; j + 4 <= kPoints; j += 4) {
      for (size_t t = 0; t < 4; ++t) ptrs[t] = data.data() + (j + t) * dim;
      ops.l2_batch4(q.data(), ptrs, dim, out.data() + j);
    }
    benchmark::DoNotOptimize(out.data());
  }
  const double evals = static_cast<double>(state.iterations()) * kPoints;
  state.SetBytesProcessed(
      static_cast<int64_t>(evals * dim * sizeof(double)));
  state.counters["evals/ns"] =
      benchmark::Counter(evals * 1e-9, benchmark::Counter::kIsRate);
  state.SetLabel(ops.name);
}

// LP panel: y = A x over the padded constraint matrix (ray-shoot and
// active-set row products). One eval = one row dot product.
void BM_MatVec(benchmark::State& state) {
  const size_t dim = static_cast<size_t>(state.range(0));
  const bool dispatched = state.range(1) != 0;
  const kernels::KernelOps& ops = TableFor(dispatched);

  Rng rng(42);
  const size_t rows = 2048;
  const size_t stride = kernels::PaddedDim(dim);
  std::vector<double> a(rows * stride, 0.0);
  for (size_t r = 0; r < rows; ++r) {
    for (size_t i = 0; i < dim; ++i) {
      a[r * stride + i] = rng.NextDouble(-1.0, 1.0);
    }
  }
  std::vector<double> x(dim);
  for (auto& v : x) v = rng.NextDouble(-1.0, 1.0);
  std::vector<double> y(rows);

  for (auto _ : state) {
    ops.mat_vec(a.data(), rows, dim, stride, x.data(), y.data());
    benchmark::DoNotOptimize(y.data());
  }
  const double evals = static_cast<double>(state.iterations()) * rows;
  state.SetBytesProcessed(
      static_cast<int64_t>(evals * stride * sizeof(double)));
  state.counters["evals/ns"] =
      benchmark::Counter(evals * 1e-9, benchmark::Counter::kIsRate);
  state.SetLabel(ops.name);
}

void DistanceArgs(benchmark::internal::Benchmark* b) {
  for (int dim : {2, 4, 8, 16, 32}) {
    b->Args({dim, 0});  // scalar reference
    b->Args({dim, 1});  // dispatched (avx2/neon when available)
  }
}

BENCHMARK(BM_L2BatchSoa)->Apply(DistanceArgs);
BENCHMARK(BM_L2Batch4)->Apply(DistanceArgs);
BENCHMARK(BM_MatVec)->Apply(DistanceArgs);

}  // namespace
}  // namespace nncell

BENCHMARK_MAIN();
